package router_test

// Table-driven fault injection against a real in-process fleet: for each
// failure mode (hang, TCP reset, 503, slow /readyz) the router must (1)
// eject the faulted replica, (2) route zero live requests to it while
// ejected, (3) probe it half-open after the recovery window, and (4) close
// the breaker and resume routing once the fault clears. Runs under -race in
// CI with every other test.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"patdnn/internal/router"
	"patdnn/internal/router/routertest"
)

// pickOwnedModel returns a registry-legal model name whose ring key lands
// on the replica at ownerURL, so a test can steer traffic at a chosen
// replica deterministically.
func pickOwnedModel(t *testing.T, urls []string, vnodes int, ownerURL string) string {
	t.Helper()
	ring := router.NewRing(urls, vnodes)
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("m%04d", i)
		// The router's ring key for a registry model is network + NUL +
		// empty dataset.
		if ring.Pick(name+"\x00") == ownerURL {
			return name
		}
	}
	t.Fatal("no model name hashed to the target replica in 4096 tries")
	return ""
}

// inferVia posts one inference for model through the router and returns
// (status, serving replica name).
func inferVia(t *testing.T, routerURL, model string, timeoutMs float64) (int, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"network": model, "input": routertest.TinyInput(1), "timeout_ms": timeoutMs,
	})
	resp, err := http.Post(routerURL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("infer via router: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Patdnn-Replica")
}

// waitFleet polls the router's fleet view until cond holds for the replica
// at url, or fails the test.
func waitFleet(t *testing.T, rt *router.Router, url string, timeout time.Duration,
	what string, cond func(router.ReplicaView) bool) router.ReplicaView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, rv := range rt.Fleet().Replicas {
			if rv.URL == url && cond(rv) {
				return rv
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never reached %q; fleet: %+v", url, what, rt.Fleet())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFaultInjectionEjectionAndRecovery(t *testing.T) {
	cases := []struct {
		name  string
		fault routertest.Fault
	}{
		{"hang", routertest.FaultHang},
		{"tcp_reset", routertest.FaultReset},
		{"http_503", routertest.Fault503},
		{"slow_readyz", routertest.FaultSlowReadyz},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fleet := routertest.NewFleet(t, routertest.Options{
				Replicas:     3,
				WithRegistry: true,
				SlowDelay:    300 * time.Millisecond, // >> ProbeTimeout
			})
			target := fleet.Replicas[0]
			model := pickOwnedModel(t, fleet.URLs(), 64, target.URL())
			fleet.RegisterTiny("v1", model)
			fleet.WaitReady(10 * time.Second)

			rt, err := router.New(router.Config{
				Replicas:      fleet.URLs(),
				VNodes:        64,
				ProbeInterval: 20 * time.Millisecond,
				ProbeTimeout:  50 * time.Millisecond,
				EjectAfter:    2,
				RecoverAfter:  150 * time.Millisecond,
				Logf:          t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt.Handler())
			defer front.Close()

			// Healthy baseline: the model's owner serves it.
			if status, by := inferVia(t, front.URL, model, 2000); status != 200 || by != target.Name {
				t.Fatalf("warm request: status=%d served-by=%q, want 200 from %s", status, by, target.Name)
			}

			target.SetFault(tc.fault)
			waitFleet(t, rt, target.URL(), 5*time.Second, "ejected",
				func(rv router.ReplicaView) bool { return rv.State == "ejected" && rv.Ejections >= 1 })

			// While ejected: zero live requests reach the replica; traffic
			// lands on the ring sibling instead. (FaultHang/Reset/503 stop
			// requests at the gate, but the Served() counter is the proof
			// for slow_readyz, whose data path still works.)
			before := target.Served()
			for i := 0; i < 15; i++ {
				status, by := inferVia(t, front.URL, model, 2000)
				if status != 200 {
					t.Fatalf("request %d during ejection: status %d", i, status)
				}
				if by == target.Name {
					t.Fatalf("request %d served by ejected replica %s", i, target.Name)
				}
			}
			if got := target.Served(); got != before {
				t.Fatalf("ejected replica received %d requests", got-before)
			}

			// Heal. The breaker must walk ejected -> half-open (probe) ->
			// healthy, and traffic must return.
			target.SetFault(routertest.FaultNone)
			rv := waitFleet(t, rt, target.URL(), 5*time.Second, "recovered",
				func(rv router.ReplicaView) bool { return rv.State == "healthy" && rv.Recoveries >= 1 })
			if rv.HalfOpenProbes < 1 {
				t.Fatalf("recovery without a half-open probe: %+v", rv)
			}

			back := false
			for i := 0; i < 20 && !back; i++ {
				_, by := inferVia(t, front.URL, model, 2000)
				back = by == target.Name
			}
			if !back {
				t.Fatalf("recovered replica %s never served again", target.Name)
			}
		})
	}
}

func TestSpillBoundedToOneHop(t *testing.T) {
	// With every replica refusing (503), a request burns its single spill
	// hop and relays the sibling's refusal — never a retry storm across
	// the whole ring.
	fleet := routertest.NewFleet(t, routertest.Options{Replicas: 3, WithRegistry: true})
	model := pickOwnedModel(t, fleet.URLs(), 64, fleet.Replicas[0].URL())
	fleet.RegisterTiny("v1", model)
	fleet.WaitReady(10 * time.Second)

	rt, err := router.New(router.Config{
		Replicas:      fleet.URLs(),
		VNodes:        64,
		ProbeInterval: time.Hour, // passive signals only: ejection must not hide the spill accounting
		EjectAfter:    1000,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for _, rp := range fleet.Replicas {
		rp.SetFault(routertest.Fault503)
	}
	spillsBefore := rt.Fleet().Spills
	status, _ := inferVia(t, front.URL, model, 2000)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-503 fleet returned %d, want the spill target's 503 relayed", status)
	}
	if got := rt.Fleet().Spills - spillsBefore; got != 1 {
		t.Fatalf("request used %d spill hops, want exactly 1", got)
	}
}

func TestSpillOnShedServesFromSibling(t *testing.T) {
	// The primary answering 503 (closing) while its sibling is healthy: the
	// request must spill exactly one hop and come back 200 from the
	// sibling, with the spill visible in the router's counters.
	fleet := routertest.NewFleet(t, routertest.Options{Replicas: 2, WithRegistry: true})
	primary := fleet.Replicas[0]
	model := pickOwnedModel(t, fleet.URLs(), 64, primary.URL())
	fleet.RegisterTiny("v1", model)
	fleet.WaitReady(10 * time.Second)

	rt, err := router.New(router.Config{
		Replicas:      fleet.URLs(),
		VNodes:        64,
		ProbeInterval: time.Hour,
		EjectAfter:    1000,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	primary.SetFault(routertest.Fault503)
	status, by := inferVia(t, front.URL, model, 2000)
	if status != 200 {
		t.Fatalf("spilled request: status %d", status)
	}
	if by == primary.Name || by == "" {
		t.Fatalf("spilled request served by %q, want the sibling", by)
	}
	fv := rt.Fleet()
	if fv.Spills < 1 || fv.SpillServed < 1 {
		t.Fatalf("spill not accounted: %+v", fv)
	}
}
