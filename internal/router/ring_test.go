package router

// Property tests for the consistent-hash ring. The load-bearing claims:
//
//  1. Determinism: placement is a pure function of (member set, vnodes) —
//     construction order, process restarts, and separate router instances
//     all agree. (Two routers disagreeing would split one model's batch
//     stream across replicas.)
//  2. Minimal disruption: adding a member moves keys only TO the new
//     member; removing one moves only ITS keys; and the moved fraction is
//     ~1/N, not a full reshuffle.
//  3. Candidates is a permutation of the members with the owner first, so
//     the spill sibling is always a real, distinct replica.

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d\x00ds%d", i, i%3)
	}
	return keys
}

func members(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return m
}

func TestRingDeterministicAcrossConstructionOrder(t *testing.T) {
	ms := members(5)
	a := NewRing(ms, 128)
	shuffled := append([]string(nil), ms...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := NewRing(shuffled, 128)
	for _, k := range testKeys(2000) {
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("key %q: order-dependent placement %q vs %q", k, a.Pick(k), b.Pick(k))
		}
	}
	// And across a "restart": a third, freshly built ring agrees too.
	c := NewRing(ms, 128)
	for _, k := range testKeys(100) {
		if a.Pick(k) != c.Pick(k) {
			t.Fatalf("key %q: rebuild changed placement", k)
		}
	}
}

func TestRingJoinMovesOnlyToNewMember(t *testing.T) {
	keys := testKeys(10000)
	for _, n := range []int{2, 4, 8} {
		small := NewRing(members(n), 128)
		grown := NewRing(members(n+1), 128)
		newcomer := fmt.Sprintf("http://10.0.0.%d:8080", n+1)
		moved := 0
		for _, k := range keys {
			before, after := small.Pick(k), grown.Pick(k)
			if before == after {
				continue
			}
			if after != newcomer {
				t.Fatalf("n=%d key %q moved %q -> %q, not to the new member %q",
					n, k, before, after, newcomer)
			}
			moved++
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved nothing — the new member owns no keys", n)
		}
		// Expected fraction is 1/(n+1); allow 2x for vnode variance.
		frac := float64(moved) / float64(len(keys))
		if limit := 2.0 / float64(n+1); frac > limit {
			t.Fatalf("n=%d: join moved %.1f%% of keys, want <= %.1f%%",
				n, frac*100, limit*100)
		}
	}
}

func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	keys := testKeys(10000)
	ms := members(5)
	full := NewRing(ms, 128)
	departed := ms[2]
	var remaining []string
	for _, m := range ms {
		if m != departed {
			remaining = append(remaining, m)
		}
	}
	shrunk := NewRing(remaining, 128)
	moved := 0
	for _, k := range keys {
		before, after := full.Pick(k), shrunk.Pick(k)
		if before != departed {
			if after != before {
				t.Fatalf("key %q not owned by departed member moved %q -> %q", k, before, after)
			}
			continue
		}
		if after == departed {
			t.Fatalf("key %q still maps to removed member", k)
		}
		moved++
	}
	if frac := float64(moved) / float64(len(keys)); frac > 2.0/5 {
		t.Fatalf("leave moved %.1f%% of keys, want <= %.1f%%", frac*100, 100*2.0/5)
	}
}

func TestRingCandidatesIsOwnerFirstPermutation(t *testing.T) {
	ms := members(6)
	r := NewRing(ms, 64)
	for _, k := range testKeys(500) {
		cands := r.Candidates(k)
		if len(cands) != len(ms) {
			t.Fatalf("key %q: %d candidates, want %d", k, len(cands), len(ms))
		}
		if cands[0] != r.Pick(k) {
			t.Fatalf("key %q: candidates[0]=%q but Pick=%q", k, cands[0], r.Pick(k))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %q: duplicate candidate %q", k, c)
			}
			seen[c] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	// Not a hard SLA — just a tripwire against a degenerate hash: with 128
	// vnodes over 4 members, no member should own more than 2x its share.
	r := NewRing(members(4), 128)
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Pick(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac > 0.5 {
			t.Fatalf("member %s owns %.1f%% of keys (degenerate ring)", m, frac*100)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 members own keys", len(counts))
	}
}
