package router

// Replica health: a per-replica circuit breaker fed by two signals — the
// active /readyz prober and passive forward failures. The state machine is
//
//	Healthy --(EjectAfter consecutive failures)--> Ejected
//	Ejected --(RecoverAfter elapsed)--> HalfOpen
//	HalfOpen --(probe ok)--> Healthy
//	HalfOpen --(probe fails)--> Ejected      (recovery clock restarts)
//
// An ejected replica receives no routed traffic at all; a half-open one
// receives only the prober's /readyz probe, never live inferences, so one
// cheap request — not a client's — pays to discover whether the replica is
// back. 429 responses are deliberately NOT failures: they are the engine's
// healthy admission control doing its job, and ejecting a replica for
// shedding would turn backpressure into an outage.

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// State is a replica's circuit-breaker state.
type State int32

const (
	StateHealthy State = iota
	StateEjected
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateEjected:
		return "ejected"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// replica is one backend's routing state and counters.
type replica struct {
	url string

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures (probe or forward)
	ejectedAt time.Time // when the breaker last opened
	drained   bool      // operator intent: no new traffic (rollouts)

	inflight       atomic.Int64
	routed         atomic.Uint64 // inferences forwarded as primary
	spilled        atomic.Uint64 // inferences that spilled TO this replica
	probes         atomic.Uint64
	halfOpenProbes atomic.Uint64
	ejections      atomic.Uint64
	recoveries     atomic.Uint64
}

// eligible reports whether the replica may receive live traffic.
func (rp *replica) eligible() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.state == StateHealthy && !rp.drained
}

// snapshot returns the mutex-guarded fields without racing the prober.
func (rp *replica) snapshot() (State, bool, int) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.state, rp.drained, rp.failures
}

// recordFailure counts one failure (probe or forward) and opens the breaker
// at the threshold. Returns true when this call ejected the replica.
func (rp *replica) recordFailure(threshold int, now time.Time) bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	switch rp.state {
	case StateEjected:
		return false
	case StateHalfOpen:
		// The probe that was supposed to prove recovery failed: reopen and
		// restart the recovery clock.
		rp.state = StateEjected
		rp.ejectedAt = now
		rp.ejections.Add(1)
		return true
	}
	rp.failures++
	if rp.failures >= threshold {
		rp.state = StateEjected
		rp.ejectedAt = now
		rp.ejections.Add(1)
		return true
	}
	return false
}

// recordSuccess resets the failure streak; a half-open success closes the
// breaker. Returns true when this call recovered the replica.
func (rp *replica) recordSuccess() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.failures = 0
	if rp.state == StateHalfOpen {
		rp.state = StateHealthy
		rp.recoveries.Add(1)
		return true
	}
	return false
}

// maybeHalfOpen moves an ejected replica to half-open once the recovery
// window has elapsed. Returns true when the replica is now half-open (and
// so due a probe).
func (rp *replica) maybeHalfOpen(recoverAfter time.Duration, now time.Time) bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.state == StateEjected && now.Sub(rp.ejectedAt) >= recoverAfter {
		rp.state = StateHalfOpen
		return true
	}
	return rp.state == StateHalfOpen
}

// setDrained flips operator drain intent.
func (rp *replica) setDrained(d bool) {
	rp.mu.Lock()
	rp.drained = d
	rp.mu.Unlock()
}

// probeLoop is the router's active health checker: every ProbeInterval it
// GETs each replica's /readyz with ProbeTimeout. Probe outcomes feed the
// same failure/success accounting as forwards.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for _, rp := range rt.replicaList {
			state, _, _ := rp.snapshot()
			if state == StateEjected && !rp.maybeHalfOpen(rt.cfg.RecoverAfter, now) {
				continue // still cooling off — no probe, no traffic
			}
			rt.probe(rp)
		}
	}
}

// probe issues one /readyz check and applies its outcome.
func (rt *Router) probe(rp *replica) {
	state, _, _ := rp.snapshot()
	rp.probes.Add(1)
	if state == StateHalfOpen {
		rp.halfOpenProbes.Add(1)
	}
	ok := rt.probeOnce(rp.url)
	if ok {
		if rp.recordSuccess() {
			rt.logf("router: replica %s recovered", rp.url)
		}
		return
	}
	if rp.recordFailure(rt.cfg.EjectAfter, time.Now()) {
		rt.logf("router: replica %s ejected (readyz failing)", rp.url)
	}
}

// probeOnce reports whether one /readyz round trip succeeded within the
// probe timeout. A 503 (engine not ready) is a failure like a transport
// error or a hang: the replica must not receive traffic either way.
func (rt *Router) probeOnce(url string) bool {
	req, err := http.NewRequest(http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return false
	}
	drainBody(resp)
	return resp.StatusCode == http.StatusOK
}
