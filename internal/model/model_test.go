package model

import (
	"math/rand"
	"testing"
)

func TestVGG16ImageNetCharacteristics(t *testing.T) {
	m := VGG16("imagenet")
	if got := len(m.ConvLayers()); got != 13 {
		t.Fatalf("VGG conv layers = %d, want 13", got)
	}
	if got := m.PaperLayerCount(); got != 16 {
		t.Fatalf("VGG paper layers = %d, want 16", got)
	}
	// Table 5: 553.5 MB at float32. Allow 1% slack (bias accounting).
	size := m.SizeMB(4)
	if size < 548 || size > 560 {
		t.Fatalf("VGG size = %.1f MB, want ~553.5", size)
	}
	// VGG-16 is ~15.5 GMACs on 224x224 input.
	macs := float64(m.MACs())
	if macs < 15.0e9 || macs > 16.0e9 {
		t.Fatalf("VGG MACs = %.2fG", macs/1e9)
	}
}

func TestVGG16UniqueConvsMatchTable6(t *testing.T) {
	m := VGG16("imagenet")
	u := m.UniqueConvs()
	if len(u) != 9 {
		t.Fatalf("unique conv shapes = %d, want 9 (L1..L9)", len(u))
	}
	wantShapes := []string{
		"[64,3,3,3]", "[64,64,3,3]", "[128,64,3,3]", "[128,128,3,3]",
		"[256,128,3,3]", "[256,256,3,3]", "[512,256,3,3]", "[512,512,3,3]",
		"[512,512,3,3]",
	}
	for i, w := range wantShapes {
		if got := u[i].Rep.FilterShape(); got != w {
			t.Errorf("%s shape = %s, want %s", u[i].ShortName, got, w)
		}
	}
	// L8 and L9 share a filter shape but differ in spatial size.
	if u[7].Rep.OutH == u[8].Rep.OutH {
		t.Error("L8 and L9 must differ in output size")
	}
	// Multiplicities must cover all 13 conv layers.
	total := 0
	for _, g := range u {
		total += g.Count
	}
	if total != 13 {
		t.Fatalf("unique groups cover %d layers, want 13", total)
	}
}

func TestVGG16CIFARSize(t *testing.T) {
	m := VGG16("cifar10")
	if got := len(m.ConvLayers()); got != 13 {
		t.Fatalf("conv layers = %d", got)
	}
	size := m.SizeMB(4)
	// Table 5 reports 61 MB (their FC head differs slightly); ours is ~58.
	if size < 54 || size > 64 {
		t.Fatalf("VGG/CIFAR size = %.1f MB, want ~61", size)
	}
}

func TestResNet50Characteristics(t *testing.T) {
	m := ResNet50("imagenet")
	if got := len(m.ConvLayers()); got != 49 {
		t.Fatalf("RNT counted conv layers = %d, want 49", got)
	}
	if got := m.PaperLayerCount(); got != 50 {
		t.Fatalf("RNT paper layers = %d, want 50", got)
	}
	// Projections exist but are excluded from the counted set.
	if got := len(m.AllConvLayers()) - len(m.ConvLayers()); got != 4 {
		t.Fatalf("RNT projection convs = %d, want 4", got)
	}
	size := m.SizeMB(4)
	// Table 5: 102.5 MB.
	if size < 95 || size > 107 {
		t.Fatalf("RNT size = %.1f MB, want ~102.5", size)
	}
	macs := float64(m.MACs())
	if macs < 3.5e9 || macs > 4.5e9 {
		t.Fatalf("RNT MACs = %.2fG, want ~4.1G", macs/1e9)
	}
	// Final feature map before GAP must be 2048 x 7 x 7.
	fc := m.FCLayers()[0]
	if fc.InC != 2048 {
		t.Fatalf("RNT fc in = %d, want 2048", fc.InC)
	}
}

func TestResNet50CIFAR(t *testing.T) {
	m := ResNet50("cifar10")
	if got := len(m.ConvLayers()); got != 49 {
		t.Fatalf("conv layers = %d, want 49", got)
	}
	size := m.SizeMB(4)
	// Table 5: 94.4 MB (ImageNet body, 10-class head).
	if size < 87 || size > 99 {
		t.Fatalf("RNT/CIFAR size = %.1f MB, want ~94.4", size)
	}
}

func TestMobileNetV2Characteristics(t *testing.T) {
	m := MobileNetV2("imagenet")
	if got := len(m.ConvLayers()); got != 52 {
		t.Fatalf("MBNT counted conv layers = %d, want 52", got)
	}
	if got := m.PaperLayerCount(); got != 53 {
		t.Fatalf("MBNT paper layers = %d, want 53", got)
	}
	size := m.SizeMB(4)
	// Table 5: 14.2 MB.
	if size < 12.5 || size > 15.5 {
		t.Fatalf("MBNT size = %.1f MB, want ~14.2", size)
	}
	macs := float64(m.MACs())
	if macs < 0.25e9 || macs > 0.45e9 {
		t.Fatalf("MBNT MACs = %.2fG, want ~0.3G", macs/1e9)
	}
}

func TestMobileNetV2CIFAR(t *testing.T) {
	m := MobileNetV2("cifar10")
	if got := len(m.ConvLayers()); got != 53 {
		t.Fatalf("MBNT/CIFAR conv layers = %d, want 53", got)
	}
	if got := m.PaperLayerCount(); got != 54 {
		t.Fatalf("MBNT/CIFAR paper layers = %d, want 54", got)
	}
	size := m.SizeMB(4)
	// Table 5: 9.4 MB.
	if size < 7.5 || size > 11 {
		t.Fatalf("MBNT/CIFAR size = %.1f MB, want ~9.4", size)
	}
}

func TestShapePropagation(t *testing.T) {
	m := VGG16("imagenet")
	// After 5 pools, spatial must be 7x7 with 512 channels.
	var last *Layer
	for _, l := range m.Layers {
		if l.Kind == MaxPool {
			last = l
		}
	}
	if last.OutH != 7 || last.OutW != 7 || last.OutC != 512 {
		t.Fatalf("VGG final pool = %dx%dx%d, want 512x7x7", last.OutC, last.OutH, last.OutW)
	}
	fc := m.FCLayers()[0]
	if fc.InC != 512*7*7 {
		t.Fatalf("fc1 in = %d, want 25088", fc.InC)
	}
}

func TestResidualShortcutsResolve(t *testing.T) {
	for _, m := range []*Model{ResNet50("imagenet"), MobileNetV2("imagenet")} {
		for _, l := range m.Layers {
			if l.Kind != Add {
				continue
			}
			src := m.Layer(l.ShortcutOf)
			if src == nil {
				t.Fatalf("%s: add layer %s references missing %q", m.Name, l.Name, l.ShortcutOf)
			}
		}
	}
}

func TestAllocWeights(t *testing.T) {
	m := VGG16("cifar10")
	rng := rand.New(rand.NewSource(1))
	l := m.ConvLayers()[2]
	w := l.AllocWeights(rng)
	wantShape := []int{l.OutC, l.InC, 3, 3}
	for i, d := range wantShape {
		if w.Dim(i) != d {
			t.Fatalf("weight shape %v, want %v", w.Shape(), wantShape)
		}
	}
	if w.L2Norm() == 0 {
		t.Fatal("weights not initialized")
	}
}

func TestDWConvAccounting(t *testing.T) {
	m := MobileNetV2("imagenet")
	var dw *Layer
	for _, l := range m.Layers {
		if l.Kind == DWConv {
			dw = l
			break
		}
	}
	if dw == nil {
		t.Fatal("no dwconv layer")
	}
	// Depthwise: one 3x3 kernel per channel.
	if got := dw.Params(); got != int64(dw.OutC*9+dw.OutC) {
		t.Fatalf("dw params = %d", got)
	}
	if got := dw.KernelCount(); got != dw.OutC {
		t.Fatalf("dw kernels = %d, want %d", got, dw.OutC)
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, name := range []string{"VGG", "RNT", "MBNT"} {
		m, err := ByName(name, "imagenet")
		if err != nil || m == nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("AlexNet", "imagenet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if got := len(All()); got != 6 {
		t.Fatalf("All() = %d models, want 6", got)
	}
}

func TestConvMACsDominant(t *testing.T) {
	// The paper notes CONV layers are >90% (VGG) / >95% of compute.
	for _, m := range []*Model{VGG16("imagenet"), ResNet50("imagenet")} {
		frac := float64(m.ConvMACs()) / float64(m.MACs())
		if frac < 0.90 {
			t.Errorf("%s conv MAC fraction = %.2f, want >= 0.90", m.Name, frac)
		}
	}
}
