package model

import "fmt"

// builder incrementally appends layers, propagating the running feature-map
// shape (c, h, w).
type builder struct {
	m       *Model
	c, h, w int
	n       int // layer counter for auto-naming
}

func newBuilder(name, short, dataset string) *builder {
	m := &Model{Name: name, Short: short, Dataset: dataset, InC: 3}
	switch dataset {
	case "imagenet":
		m.Classes, m.InH, m.InW = 1000, 224, 224
	case "cifar10":
		m.Classes, m.InH, m.InW = 10, 32, 32
	default:
		panic("model: unknown dataset " + dataset)
	}
	b := &builder{m: m, c: m.InC, h: m.InH, w: m.InW}
	b.m.Layers = append(b.m.Layers, &Layer{
		Name: "input", Kind: Input, OutC: b.c, OutH: b.h, OutW: b.w,
	})
	return b
}

func (b *builder) name(prefix string) string {
	b.n++
	return fmt.Sprintf("%s%d", prefix, b.n)
}

func (b *builder) conv(name string, outC, k, stride, pad int, proj bool) *Layer {
	l := &Layer{
		Name: name, Kind: Conv,
		InC: b.c, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: 1,
		InH: b.h, InW: b.w, HasBias: true, Projection: proj,
	}
	l.OutH = (b.h+2*pad-k)/stride + 1
	l.OutW = (b.w+2*pad-k)/stride + 1
	b.c, b.h, b.w = outC, l.OutH, l.OutW
	b.m.Layers = append(b.m.Layers, l)
	return l
}

func (b *builder) dwconv(name string, k, stride, pad int) *Layer {
	l := &Layer{
		Name: name, Kind: DWConv,
		InC: b.c, OutC: b.c, KH: k, KW: k, Stride: stride, Pad: pad, Groups: b.c,
		InH: b.h, InW: b.w, HasBias: true,
	}
	l.OutH = (b.h+2*pad-k)/stride + 1
	l.OutW = (b.w+2*pad-k)/stride + 1
	b.h, b.w = l.OutH, l.OutW
	b.m.Layers = append(b.m.Layers, l)
	return l
}

func (b *builder) convt(name string, outC, k, stride, pad, outPad int) *Layer {
	l := &Layer{
		Name: name, Kind: ConvTranspose,
		InC: b.c, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		OutPad: outPad, Groups: 1, InH: b.h, InW: b.w, HasBias: true,
	}
	l.OutH = (b.h-1)*stride - 2*pad + k + outPad
	l.OutW = (b.w-1)*stride - 2*pad + k + outPad
	b.c, b.h, b.w = outC, l.OutH, l.OutW
	b.m.Layers = append(b.m.Layers, l)
	return l
}

// upsampleBranch appends a nearest-neighbor upsample of an earlier layer's
// output (a skip branch, like ResNet's projection shortcuts): it does not
// advance the builder's running shape, and the following add consumes it as
// the shortcut operand. The scale is stored in Stride.
func (b *builder) upsampleBranch(name string, scale int, srcName string) *Layer {
	src := b.m.Layer(srcName)
	if src == nil {
		panic("model: upsampleBranch source " + srcName + " not found")
	}
	l := &Layer{
		Name: name, Kind: Upsample, InC: src.OutC, OutC: src.OutC,
		Stride: scale, InH: src.OutH, InW: src.OutW,
		OutH: src.OutH * scale, OutW: src.OutW * scale, ShortcutOf: srcName,
	}
	b.m.Layers = append(b.m.Layers, l)
	return l
}

func (b *builder) bn() {
	b.m.Layers = append(b.m.Layers, &Layer{
		Name: b.name("bn"), Kind: BatchNorm, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, OutH: b.h, OutW: b.w,
	})
}

func (b *builder) relu() {
	b.m.Layers = append(b.m.Layers, &Layer{
		Name: b.name("relu"), Kind: ReLU, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, OutH: b.h, OutW: b.w,
	})
}

func (b *builder) maxpool(k int) {
	l := &Layer{
		Name: b.name("pool"), Kind: MaxPool, InC: b.c, OutC: b.c,
		KH: k, KW: k, Stride: k, InH: b.h, InW: b.w,
	}
	l.OutH, l.OutW = b.h/k, b.w/k
	b.h, b.w = l.OutH, l.OutW
	b.m.Layers = append(b.m.Layers, l)
}

func (b *builder) avgpoolGlobal() {
	l := &Layer{
		Name: b.name("gap"), Kind: AvgPoolGlobal, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, OutH: 1, OutW: 1,
	}
	b.h, b.w = 1, 1
	b.m.Layers = append(b.m.Layers, l)
}

func (b *builder) flatten() {
	l := &Layer{
		Name: b.name("flatten"), Kind: Flatten,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c * b.h * b.w, OutH: 1, OutW: 1,
	}
	b.c, b.h, b.w = l.OutC, 1, 1
	b.m.Layers = append(b.m.Layers, l)
}

func (b *builder) fc(name string, outC int) {
	l := &Layer{
		Name: name, Kind: FC, InC: b.c, OutC: outC, HasBias: true,
		InH: 1, InW: 1, OutH: 1, OutW: 1,
	}
	b.c = outC
	b.m.Layers = append(b.m.Layers, l)
}

func (b *builder) add(shortcut string) {
	b.m.Layers = append(b.m.Layers, &Layer{
		Name: b.name("add"), Kind: Add, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, OutH: b.h, OutW: b.w, ShortcutOf: shortcut,
	})
}

func (b *builder) softmax() {
	b.m.Layers = append(b.m.Layers, &Layer{
		Name: "softmax", Kind: SoftmaxOp, InC: b.c, OutC: b.c,
		OutH: 1, OutW: 1,
	})
}

// VGG16 builds the 16-layer VGG network: 13 3×3 conv layers in five blocks
// followed by three FC layers (ImageNet: 4096-4096-1000; CIFAR-10:
// 512-512-10, the standard CIFAR adaptation).
func VGG16(dataset string) *Model {
	b := newBuilder("VGG-16", "VGG", dataset)
	blocks := []struct{ n, c int }{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	li := 0
	for _, blk := range blocks {
		for i := 0; i < blk.n; i++ {
			li++
			b.conv(fmt.Sprintf("conv%d", li), blk.c, 3, 1, 1, false)
			b.relu()
		}
		b.maxpool(2)
	}
	b.flatten()
	if dataset == "imagenet" {
		b.fc("fc1", 4096)
		b.relu()
		b.fc("fc2", 4096)
		b.relu()
		b.fc("fc3", 1000)
	} else {
		b.fc("fc1", 512)
		b.relu()
		b.fc("fc2", 512)
		b.relu()
		b.fc("fc3", 10)
	}
	b.softmax()
	return b.m
}

// ResNet50 builds ResNet-50: a 7×7 stem then bottleneck stages of
// (3, 4, 6, 3) blocks with widths (64, 128, 256, 512)×4 expansion, global
// average pooling, and a final FC. Projection shortcuts hold real weights but
// are flagged Projection so the counted CONV layers total 49, matching
// Table 5.
func ResNet50(dataset string) *Model {
	b := newBuilder("ResNet-50", "RNT", dataset)
	if dataset == "imagenet" {
		b.conv("conv1", 64, 7, 2, 3, false)
		b.bn()
		b.relu()
		b.maxpool(2)
	} else {
		// CIFAR stem: 3×3 stride 1, no pool, preserving 32×32.
		b.conv("conv1", 64, 3, 1, 1, false)
		b.bn()
		b.relu()
	}
	stages := []struct{ blocks, width, stride int }{
		{3, 64, 1}, {4, 128, 2}, {6, 256, 2}, {3, 512, 2},
	}
	ci := 1
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 && si > 0 {
				stride = st.stride
			}
			inName := b.m.Layers[len(b.m.Layers)-1].Name
			needProj := blk == 0
			ci++
			b.conv(fmt.Sprintf("conv%d_a", ci), st.width, 1, 1, 0, false)
			b.bn()
			b.relu()
			b.conv(fmt.Sprintf("conv%d_b", ci), st.width, 3, stride, 1, false)
			b.bn()
			b.relu()
			b.conv(fmt.Sprintf("conv%d_c", ci), st.width*4, 1, 1, 0, false)
			b.bn()
			if needProj {
				// Projection shortcut built on the block input shape.
				proj := &Layer{
					Name: fmt.Sprintf("proj%d", ci), Kind: Conv,
					InC: widthIn(b.m, inName), OutC: st.width * 4,
					KH: 1, KW: 1, Stride: stride, Pad: 0, Groups: 1,
					HasBias: false, Projection: true, ShortcutOf: inName,
					InH: b.h * stride, InW: b.w * stride, OutH: b.h, OutW: b.w,
				}
				b.m.Layers = append(b.m.Layers, proj)
			}
			b.add(inName)
			b.relu()
		}
	}
	b.avgpoolGlobal()
	b.flatten()
	b.fc("fc", b.m.Classes)
	b.softmax()
	return b.m
}

func widthIn(m *Model, name string) int {
	if l := m.Layer(name); l != nil {
		return l.OutC
	}
	return 0
}

// MobileNetV2 builds MobileNet-V2: a 3×3 stem, 17 inverted-residual
// bottlenecks, and a 1×1 head conv before global pooling and the classifier.
// The ImageNet variant's first bottleneck uses expansion t=1 (no expand
// conv): 52 counted conv layers, 53 paper layers. The CIFAR variant keeps the
// expand conv in the first bottleneck (53 conv, 54 layers), matching Table 5.
func MobileNetV2(dataset string) *Model {
	b := newBuilder("MobileNet-V2", "MBNT", dataset)
	stemStride := 2
	if dataset == "cifar10" {
		stemStride = 1
	}
	b.conv("conv_stem", 32, 3, stemStride, 1, false)
	b.bn()
	b.relu()
	// t (expansion), c (output channels), n (repeats), s (first stride)
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	if dataset == "cifar10" {
		cfg[0].t = 6 // keep the expand conv: +1 conv layer (Table 5)
		cfg[1].s = 1 // preserve resolution on 32×32 inputs
	}
	bi := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			bi++
			stride := 1
			if i == 0 {
				stride = c.s
			}
			inName := b.m.Layers[len(b.m.Layers)-1].Name
			inC := b.c
			if c.t != 1 {
				b.conv(fmt.Sprintf("b%d_expand", bi), inC*c.t, 1, 1, 0, false)
				b.bn()
				b.relu()
			}
			b.dwconv(fmt.Sprintf("b%d_dw", bi), 3, stride, 1)
			b.bn()
			b.relu()
			b.conv(fmt.Sprintf("b%d_project", bi), c.c, 1, 1, 0, false)
			b.bn()
			if stride == 1 && inC == c.c {
				b.add(inName)
			}
		}
	}
	b.conv("conv_head", 1280, 1, 1, 0, false)
	b.bn()
	b.relu()
	b.avgpoolGlobal()
	b.flatten()
	b.fc("fc", b.m.Classes)
	b.softmax()
	return b.m
}

// SRNet builds the SR-style image-to-image generator: a 3×3 conv trunk with
// a local residual block, a ×2 transposed-conv upsampling head (k=3, s=2,
// p=1, output padding 1, so 32 -> 64 exactly), and a global skip adding the
// nearest-neighbor-upsampled input to the reconstruction — the architecture
// family of the "Image Enhancing Pattern-based Sparsity" companion work. The
// output is a [3, 2H, 2W] image tensor, not a class vector.
func SRNet(dataset string) *Model {
	b := newBuilder("SR-Gen", "SR", dataset)
	b.conv("conv1", 32, 3, 1, 1, false)
	b.relu()
	skip := b.m.Layers[len(b.m.Layers)-1].Name
	b.conv("conv2", 32, 3, 1, 1, false)
	b.bn()
	b.relu()
	b.conv("conv3", 32, 3, 1, 1, false)
	b.bn()
	b.add(skip)
	b.relu()
	b.convt("up", 32, 3, 2, 1, 1)
	b.bn()
	b.relu()
	b.conv("conv_out", 3, 3, 1, 1, false)
	b.upsampleBranch("up_skip", 2, "input")
	b.add("input")
	return b.m
}

// ByName returns a model by the paper's short or full name.
func ByName(name, dataset string) (*Model, error) {
	switch name {
	case "VGG", "VGG-16", "vgg", "vgg16":
		return VGG16(dataset), nil
	case "RNT", "ResNet-50", "resnet50", "rnt":
		return ResNet50(dataset), nil
	case "MBNT", "MobileNet-V2", "mobilenetv2", "mbnt":
		return MobileNetV2(dataset), nil
	case "SR", "SR-Gen", "sr", "srgen", "srnet":
		return SRNet(dataset), nil
	}
	return nil, fmt.Errorf("model: unknown network %q", name)
}

// All returns the six trained-network descriptors of Table 5 in paper order.
func All() []*Model {
	return []*Model{
		VGG16("imagenet"), VGG16("cifar10"),
		ResNet50("imagenet"), ResNet50("cifar10"),
		MobileNetV2("imagenet"), MobileNetV2("cifar10"),
	}
}
