// Package model describes DNN architectures as layer graphs with exact shape,
// parameter, and FLOP accounting. It provides the three networks PatDNN is
// evaluated on — VGG-16, ResNet-50, and MobileNet-V2 — in both ImageNet
// (224×224) and CIFAR-10 (32×32) variants, matching the characteristics
// reported in Tables 5 and 6 of the paper.
//
// The descriptors are metadata only; weight tensors are allocated on demand
// (per layer) by the experiments so that describing VGG-16 does not require
// 550 MB of storage.
package model

import (
	"fmt"
	"math/rand"

	"patdnn/internal/tensor"
)

// OpKind enumerates the layer operator types.
type OpKind int

// Operator kinds. Conv covers standard and grouped convolutions; DWConv is
// depthwise (Groups == InC).
const (
	Input OpKind = iota
	Conv
	DWConv
	FC
	MaxPool
	AvgPoolGlobal
	ReLU
	BatchNorm
	Add
	Flatten
	SoftmaxOp
	// ConvTranspose is the stride-s upsampling convolution of image-to-image
	// heads (weights [OutC, InC, KH, KW], same layout as Conv); Upsample is
	// parameter-free nearest-neighbor expansion by an integer scale (stored
	// in Stride).
	ConvTranspose
	Upsample
)

var kindNames = map[OpKind]string{
	Input: "input", Conv: "conv", DWConv: "dwconv", FC: "fc",
	MaxPool: "maxpool", AvgPoolGlobal: "avgpool", ReLU: "relu",
	BatchNorm: "batchnorm", Add: "add", Flatten: "flatten", SoftmaxOp: "softmax",
	ConvTranspose: "convtranspose", Upsample: "upsample",
}

func (k OpKind) String() string { return kindNames[k] }

// Layer is one operator in the network with resolved shapes.
type Layer struct {
	Name string
	Kind OpKind

	// Convolution / FC geometry. For FC, InC/OutC are the feature counts.
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	OutPad      int // ConvTranspose only: extra rows/cols at the bottom/right
	Groups      int
	InH, InW    int
	OutH, OutW  int
	HasBias     bool
	Projection  bool // ResNet downsample convs: real weights, but not
	// counted in the paper's "CONV layers" tally.
	ShortcutOf string // for Add: name of the layer providing the shortcut
}

// IsConv reports whether the layer holds convolution weights.
func (l *Layer) IsConv() bool { return l.Kind == Conv || l.Kind == DWConv }

// Params returns the number of weights (plus biases) the layer owns.
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv, DWConv, ConvTranspose:
		w := int64(l.OutC) * int64(l.InC/l.Groups) * int64(l.KH) * int64(l.KW)
		if l.HasBias {
			w += int64(l.OutC)
		}
		return w
	case FC:
		w := int64(l.InC) * int64(l.OutC)
		if l.HasBias {
			w += int64(l.OutC)
		}
		return w
	case BatchNorm:
		return 4 * int64(l.OutC) // gamma, beta, running mean/var
	default:
		return 0
	}
}

// MACs returns the multiply-accumulate count of one inference pass.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv, DWConv:
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) *
			int64(l.InC/l.Groups) * int64(l.KH) * int64(l.KW)
	case ConvTranspose:
		// Every input element scatters through the full kernel.
		return int64(l.OutC) * int64(l.InH) * int64(l.InW) *
			int64(l.InC/l.Groups) * int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.InC) * int64(l.OutC)
	default:
		return 0
	}
}

// KernelCount returns Co*Ci kernels for a standard conv (the unit of
// connectivity pruning); depthwise convs have one kernel per channel.
func (l *Layer) KernelCount() int {
	if l.Kind == DWConv {
		return l.OutC
	}
	return l.OutC * (l.InC / l.Groups)
}

// FilterShape renders the paper's [Co, Ci, Kh, Kw] notation.
func (l *Layer) FilterShape() string {
	return fmt.Sprintf("[%d,%d,%d,%d]", l.OutC, l.InC/l.Groups, l.KH, l.KW)
}

// AllocWeights allocates and Xavier-initializes this conv/FC layer's weight
// tensor with a deterministic RNG.
func (l *Layer) AllocWeights(rng *rand.Rand) *tensor.Tensor {
	switch l.Kind {
	case Conv, DWConv, ConvTranspose:
		w := tensor.New(l.OutC, l.InC/l.Groups, l.KH, l.KW)
		fanIn := (l.InC / l.Groups) * l.KH * l.KW
		fanOut := l.OutC * l.KH * l.KW
		w.XavierInit(rng, fanIn, fanOut)
		return w
	case FC:
		w := tensor.New(l.OutC, l.InC)
		w.XavierInit(rng, l.InC, l.OutC)
		return w
	default:
		panic("model: AllocWeights on non-parametric layer " + l.Name)
	}
}

// Model is an ordered layer list with resolved shapes.
type Model struct {
	Name    string // "VGG-16", "ResNet-50", "MobileNet-V2"
	Short   string // "VGG", "RNT", "MBNT" (paper's shorthand)
	Dataset string // "imagenet" or "cifar10"
	Classes int
	InC     int
	InH     int
	InW     int
	Layers  []*Layer
}

// ConvLayers returns the convolution layers counted by the paper (excluding
// ResNet projection shortcuts).
func (m *Model) ConvLayers() []*Layer {
	var out []*Layer
	for _, l := range m.Layers {
		if l.IsConv() && !l.Projection {
			out = append(out, l)
		}
	}
	return out
}

// AllConvLayers returns every layer holding conv weights, including
// projection shortcuts.
func (m *Model) AllConvLayers() []*Layer {
	var out []*Layer
	for _, l := range m.Layers {
		if l.IsConv() {
			out = append(out, l)
		}
	}
	return out
}

// FCLayers returns the fully-connected layers.
func (m *Model) FCLayers() []*Layer {
	var out []*Layer
	for _, l := range m.Layers {
		if l.Kind == FC {
			out = append(out, l)
		}
	}
	return out
}

// Params returns total parameter count.
func (m *Model) Params() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Params()
	}
	return s
}

// SizeMB returns the model size in decimal megabytes (1 MB = 10^6 bytes, the
// paper's Table 5 convention) at the given bytes/weight (4 = float32, 2 = the
// FP16 used on mobile GPUs).
func (m *Model) SizeMB(bytesPerWeight int) float64 {
	return float64(m.Params()) * float64(bytesPerWeight) / 1e6
}

// MACs returns total multiply-accumulates for one inference.
func (m *Model) MACs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.MACs()
	}
	return s
}

// ConvMACs returns MACs of conv layers only (the paper's evaluation focuses
// on CONV layers, >90–95% of total time).
func (m *Model) ConvMACs() int64 {
	var s int64
	for _, l := range m.AllConvLayers() {
		s += l.MACs()
	}
	return s
}

// PaperLayerCount reproduces Table 5's "Layers" column: counted conv layers
// plus FC layers.
func (m *Model) PaperLayerCount() int {
	return len(m.ConvLayers()) + len(m.FCLayers())
}

// Layer returns the layer with the given name, or nil.
func (m *Model) Layer(name string) *Layer {
	for _, l := range m.Layers {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// UniqueConv groups counted conv layers by (filter shape, output size) and
// returns one representative per group, in network order, with its
// multiplicity. For VGG-16/ImageNet this yields exactly the paper's L1–L9
// (Table 6).
type UniqueConv struct {
	ShortName string // L1..Ln
	Rep       *Layer
	Count     int
}

// UniqueConvs computes the unique conv layer groups.
func (m *Model) UniqueConvs() []UniqueConv {
	var out []UniqueConv
	index := make(map[string]int)
	for _, l := range m.ConvLayers() {
		key := fmt.Sprintf("%s@%dx%d", l.FilterShape(), l.OutH, l.OutW)
		if i, ok := index[key]; ok {
			out[i].Count++
			continue
		}
		index[key] = len(out)
		out = append(out, UniqueConv{
			ShortName: fmt.Sprintf("L%d", len(out)+1),
			Rep:       l,
			Count:     1,
		})
	}
	return out
}
