package tensor

import "math"

// expFloat is a trivial indirection over math.Exp kept so the hot softmax
// path has a single call site to tune if needed.
func expFloat(x float64) float64 { return math.Exp(x) }

// BatchNormInference applies y = gamma*(x-mean)/sqrt(var+eps) + beta per
// channel on a [C,H,W] tensor, in place, and returns its argument.
func BatchNormInference(x, gamma, beta, mean, variance *Tensor, eps float32) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	for ic := 0; ic < c; ic++ {
		inv := float32(1 / math.Sqrt(float64(variance.Data[ic]+eps)))
		g, b, m := gamma.Data[ic], beta.Data[ic], mean.Data[ic]
		plane := x.Data[ic*h*w : (ic+1)*h*w]
		for i, v := range plane {
			plane[i] = g*(v-m)*inv + b
		}
	}
	return x
}

// CrossEntropy returns -log(prob[label]) for a probability vector.
func CrossEntropy(probs *Tensor, label int) float64 {
	p := float64(probs.Data[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}
