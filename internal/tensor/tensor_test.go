package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := a.Offset(1, 2, 3); got != 23 {
		t.Fatalf("Offset = %d, want 23", got)
	}
	if a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("Rank/Dim wrong: %d %d", a.Rank(), a.Dim(1))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(3, 0)
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	a.At(2, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	a := FromSlice(d, 2, 3)
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", a.At(1, 2))
	}
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v", b.At(2, 1))
	}
	b.Set(9, 0, 0)
	if a.At(0, 0) != 9 {
		t.Fatal("Reshape must share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 5
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestScaleAddScaledNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if got := a.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
	a.Scale(2)
	if a.Data[0] != 6 || a.Data[1] != 8 {
		t.Fatalf("Scale wrong: %v", a.Data)
	}
	b := FromSlice([]float32{1, 1}, 2)
	a.AddScaled(b, -1)
	if a.Data[0] != 5 || a.Data[1] != 7 {
		t.Fatalf("AddScaled wrong: %v", a.Data)
	}
}

func TestNNZSparsity(t *testing.T) {
	a := FromSlice([]float32{0, 1, 0, 2}, 4)
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d", a.NNZ())
	}
	if got := a.Sparsity(); got != 0.5 {
		t.Fatalf("Sparsity = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	a := FromSlice([]float32{-1, 4, 2}, 3)
	if a.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", a.ArgMax())
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 3, 1, 1, 224},
		{224, 3, 2, 1, 112},
		{32, 3, 1, 1, 32},
		{7, 7, 1, 0, 1},
		{224, 7, 2, 3, 112},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1 input channel 3x3 identity-ish, 1 filter of ones.
	in := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := New(1, 1, 3, 3)
	w.Fill(1)
	out := Conv2D(in, w, nil, ConvSpec{Stride: 1, Pad: 1})
	// Center output = sum of all = 45.
	if got := out.At(0, 1, 1); got != 45 {
		t.Fatalf("center = %v, want 45", got)
	}
	// Corner (0,0) sees the 2x2 top-left block = 1+2+4+5 = 12.
	if got := out.At(0, 0, 0); got != 12 {
		t.Fatalf("corner = %v, want 12", got)
	}
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 2, 2)
	w := New(2, 1, 1, 1)
	b := FromSlice([]float32{1.5, -2}, 2)
	out := Conv2D(in, w, b, ConvSpec{Stride: 1, Pad: 0})
	if out.At(0, 0, 0) != 1.5 || out.At(1, 1, 1) != -2 {
		t.Fatalf("bias not applied: %v", out.Data)
	}
}

func TestConv2DMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ ci, h, w, co, k, s, p int }{
		{3, 8, 8, 4, 3, 1, 1},
		{2, 7, 9, 3, 3, 2, 1},
		{5, 6, 6, 2, 1, 1, 0},
		{1, 11, 5, 2, 3, 2, 0},
	} {
		in := New(cfg.ci, cfg.h, cfg.w)
		in.Randn(rng, 1)
		w := New(cfg.co, cfg.ci, cfg.k, cfg.k)
		w.Randn(rng, 1)
		b := New(cfg.co)
		b.Randn(rng, 1)
		spec := ConvSpec{Stride: cfg.s, Pad: cfg.p}
		direct := Conv2D(in, w, b, spec)
		gemm := Conv2DIm2Col(in, w, b, spec)
		if !direct.AllClose(gemm, 1e-3) {
			t.Fatalf("cfg %+v: direct vs im2col diff %g", cfg, direct.MaxAbsDiff(gemm))
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}, 1, 4, 4)
	out, arg := MaxPool2D(in, 2)
	want := []float32{4, 8, 9, 4}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("pool = %v, want %v", out.Data, want)
		}
	}
	if in.Data[arg[0]] != 4 || in.Data[arg[2]] != 9 {
		t.Fatalf("argmax wrong: %v", arg)
	}
}

func TestAvgPoolGlobal(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 2, 2, 2)
	out := AvgPool2DGlobal(in)
	if out.At(0, 0, 0) != 2.5 || out.At(1, 0, 0) != 10 {
		t.Fatalf("avg = %v", out.Data)
	}
}

func TestReLU(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2}, 3)
	ReLU(a)
	if a.Data[0] != 0 || a.Data[2] != 2 {
		t.Fatalf("relu = %v", a.Data)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 100}, 4)
	p := Softmax(a)
	var s float64
	for _, v := range p.Data {
		if v < 0 {
			t.Fatal("negative probability")
		}
		s += float64(v)
	}
	if math.Abs(s-1) > 1e-5 {
		t.Fatalf("sum = %v", s)
	}
	if p.ArgMax() != 3 {
		t.Fatal("softmax should preserve argmax")
	}
}

func TestBatchNormInference(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	gamma := FromSlice([]float32{2}, 1)
	beta := FromSlice([]float32{1}, 1)
	mean := FromSlice([]float32{2.5}, 1)
	variance := FromSlice([]float32{1.25}, 1)
	BatchNormInference(x, gamma, beta, mean, variance, 0)
	// (1-2.5)/sqrt(1.25)*2+1 = -1.6833 approx
	if math.Abs(float64(x.Data[0])-(-1.6833)) > 1e-3 {
		t.Fatalf("bn = %v", x.Data)
	}
}

func TestCrossEntropy(t *testing.T) {
	p := FromSlice([]float32{0.5, 0.5}, 2)
	if got := CrossEntropy(p, 0); math.Abs(got-math.Ln2) > 1e-6 {
		t.Fatalf("CE = %v, want ln2", got)
	}
	zero := FromSlice([]float32{0, 1}, 2)
	if got := CrossEntropy(zero, 0); math.IsInf(got, 1) {
		t.Fatal("CE should be clamped, not +Inf")
	}
}

// Property: softmax output is a probability distribution for any finite input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c, d float32) bool {
		clamp := func(x float32) float32 {
			if x != x || x > 50 || x < -50 { // NaN or huge
				return 0
			}
			return x
		}
		in := FromSlice([]float32{clamp(a), clamp(b), clamp(c), clamp(d)}, 4)
		p := Softmax(in)
		var s float64
		for _, v := range p.Data {
			if v < 0 || v > 1.0001 {
				return false
			}
			s += float64(v)
		}
		return math.Abs(s-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conv2D is linear in the input: conv(a*x) == a*conv(x).
func TestConvLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := New(2, 5, 5)
		in.Randn(r, 1)
		w := New(3, 2, 3, 3)
		w.Randn(rng, 1)
		spec := ConvSpec{Stride: 1, Pad: 1}
		out1 := Conv2D(in, w, nil, spec)
		in2 := in.Clone()
		in2.Scale(2)
		out2 := Conv2D(in2, w, nil, spec)
		out1.Scale(2)
		return out1.AllClose(out2, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("same shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) || SameShape(New(2), New(2, 1)) {
		t.Fatal("different shapes reported same")
	}
}
