// Package tensor provides the dense float32 tensor substrate used throughout
// PatDNN: n-dimensional storage, deterministic initializers, and the numeric
// helpers the training and inference engines build on.
//
// The package is deliberately minimal and allocation-conscious: a Tensor is a
// flat []float32 plus a shape, indexed in row-major order. Convolution weights
// follow the paper's convention [Co, Ci, Kh, Kw] and feature maps [C, H, W]
// (single image) or [N, C, H, W] (batch).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
// It panics if the element count does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, Data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view over the same data with a new shape.
// It panics if element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Offset(idx...)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Offset converts a multi-index to a flat offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank %d", idx, len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Randn fills the tensor with N(0, std) samples from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierInit fills the tensor with the Glorot-uniform initialization used for
// conv/FC weights: U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled adds a*o element-wise into t. Shapes must match.
func (t *Tensor) AddScaled(o *Tensor, a float32) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
}

// NNZ returns the number of non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0,1].
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.Data))
}

// MaxAbsDiff returns the largest |t_i - o_i|; useful for numeric checks.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if len(t.Data) != len(o.Data) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(o.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element pair differs by at most tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if len(t.Data) != len(o.Data) {
		return false
	}
	return t.MaxAbsDiff(o) <= tol
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// String renders a short description (shape + a few leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 6 {
		n = 6
	}
	return fmt.Sprintf("Tensor%v%v...", t.shape, t.Data[:n])
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}
