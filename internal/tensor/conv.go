package tensor

import "fmt"

// Convolution and pooling reference implementations. These are the ground
// truth the compiled sparse kernels in internal/compiler/codegen are checked
// against, and the compute core of the training substrate.

// ConvSpec describes a 2-D convolution: kernel size, stride, and symmetric
// zero padding.
type ConvSpec struct {
	Stride int
	Pad    int
}

// ConvOutDim returns the output spatial size for input size in, kernel k,
// stride s, and padding p.
func ConvOutDim(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}

// Conv2D computes a direct 2-D convolution.
//
//	input:  [Ci, H, W]
//	weight: [Co, Ci, Kh, Kw]
//	bias:   [Co] or nil
//	output: [Co, Ho, Wo]
func Conv2D(input, weight, bias *Tensor, spec ConvSpec) *Tensor {
	ci, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	co, wci, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if ci != wci {
		panic("tensor: Conv2D channel mismatch")
	}
	ho := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	wo := ConvOutDim(w, kw, spec.Stride, spec.Pad)
	out := New(co, ho, wo)
	for oc := 0; oc < co; oc++ {
		var b float32
		if bias != nil {
			b = bias.Data[oc]
		}
		for oh := 0; oh < ho; oh++ {
			for ow := 0; ow < wo; ow++ {
				acc := b
				for ic := 0; ic < ci; ic++ {
					for r := 0; r < kh; r++ {
						ih := oh*spec.Stride + r - spec.Pad
						if ih < 0 || ih >= h {
							continue
						}
						for c := 0; c < kw; c++ {
							iw := ow*spec.Stride + c - spec.Pad
							if iw < 0 || iw >= w {
								continue
							}
							acc += input.Data[(ic*h+ih)*w+iw] *
								weight.Data[((oc*ci+ic)*kh+r)*kw+c]
						}
					}
				}
				out.Data[(oc*ho+oh)*wo+ow] = acc
			}
		}
	}
	return out
}

// Im2Col lowers the input [Ci,H,W] into a matrix of shape
// [Ci*Kh*Kw, Ho*Wo] so that convolution becomes a GEMM with the weight
// matrix [Co, Ci*Kh*Kw].
func Im2Col(input *Tensor, kh, kw int, spec ConvSpec) *Tensor {
	ci, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	ho := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	wo := ConvOutDim(w, kw, spec.Stride, spec.Pad)
	cols := New(ci*kh*kw, ho*wo)
	row := 0
	for ic := 0; ic < ci; ic++ {
		for r := 0; r < kh; r++ {
			for c := 0; c < kw; c++ {
				dst := cols.Data[row*ho*wo : (row+1)*ho*wo]
				for oh := 0; oh < ho; oh++ {
					ih := oh*spec.Stride + r - spec.Pad
					for ow := 0; ow < wo; ow++ {
						iw := ow*spec.Stride + c - spec.Pad
						if ih >= 0 && ih < h && iw >= 0 && iw < w {
							dst[oh*wo+ow] = input.Data[(ic*h+ih)*w+iw]
						} else {
							dst[oh*wo+ow] = 0
						}
					}
				}
				row++
			}
		}
	}
	return cols
}

// MatMul computes C = A·B for A [m,k] and B [k,n] with simple register
// blocking; good enough for the training substrate.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// Conv2DIm2Col computes the same result as Conv2D via im2col + GEMM.
func Conv2DIm2Col(input, weight, bias *Tensor, spec ConvSpec) *Tensor {
	co, ci, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	cols := Im2Col(input, kh, kw, spec)
	wmat := weight.Reshape(co, ci*kh*kw)
	out := MatMul(wmat, cols)
	ho := ConvOutDim(input.Dim(1), kh, spec.Stride, spec.Pad)
	wo := ConvOutDim(input.Dim(2), kw, spec.Stride, spec.Pad)
	res := out.Reshape(co, ho, wo)
	if bias != nil {
		for oc := 0; oc < co; oc++ {
			b := bias.Data[oc]
			plane := res.Data[oc*ho*wo : (oc+1)*ho*wo]
			for i := range plane {
				plane[i] += b
			}
		}
	}
	return res
}

// Col2Im accumulates a column matrix [Ci*Kh*Kw, Ho*Wo] back into an input
// gradient [Ci,H,W]; the adjoint of Im2Col, used by convolution backprop.
func Col2Im(cols *Tensor, ci, h, w, kh, kw int, spec ConvSpec) *Tensor {
	ho := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	wo := ConvOutDim(w, kw, spec.Stride, spec.Pad)
	out := New(ci, h, w)
	row := 0
	for ic := 0; ic < ci; ic++ {
		for r := 0; r < kh; r++ {
			for c := 0; c < kw; c++ {
				src := cols.Data[row*ho*wo : (row+1)*ho*wo]
				for oh := 0; oh < ho; oh++ {
					ih := oh*spec.Stride + r - spec.Pad
					if ih < 0 || ih >= h {
						continue
					}
					for ow := 0; ow < wo; ow++ {
						iw := ow*spec.Stride + c - spec.Pad
						if iw < 0 || iw >= w {
							continue
						}
						out.Data[(ic*h+ih)*w+iw] += src[oh*wo+ow]
					}
				}
				row++
			}
		}
	}
	return out
}

// MatMulT1 computes C = Aᵀ·B for A [k,m] and B [k,n], yielding [m,n].
func MatMulT1(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic("tensor: MatMulT1 inner dimension mismatch")
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulT2 computes C = A·Bᵀ for A [m,k] and B [n,k], yielding [m,n].
func MatMulT2(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic("tensor: MatMulT2 inner dimension mismatch")
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// ConvTransposeOutDim returns the output spatial size of a transposed
// convolution for input size in, kernel k, stride s, padding p, and output
// padding op (extra rows/columns appended at the bottom/right edge so that
// e.g. a k=3, s=2, p=1 head maps 32 -> 64 exactly instead of 63).
func ConvTransposeOutDim(in, k, s, p, op int) int {
	return (in-1)*s - 2*p + k + op
}

// ConvTranspose2D computes a direct 2-D transposed convolution (the adjoint
// of Conv2D's input->output map), the upsampling operator of
// super-resolution-style generator heads.
//
//	input:  [Ci, H, W]
//	weight: [Co, Ci, Kh, Kw]  (same layout as Conv2D / pruned.Conv)
//	bias:   [Co] or nil
//	output: [Co, (H-1)s-2p+Kh+op, (W-1)s-2p+Kw+op]
//
// Each input element scatters through the kernel: out[oc][ih*s-p+r][iw*s-p+c]
// += in[ic][ih][iw] * w[oc][ic][r][c].
func ConvTranspose2D(input, weight, bias *Tensor, stride, pad, outPad int) *Tensor {
	co := weight.Dim(0)
	ho := ConvTransposeOutDim(input.Dim(1), weight.Dim(2), stride, pad, outPad)
	wo := ConvTransposeOutDim(input.Dim(2), weight.Dim(3), stride, pad, outPad)
	out := New(co, ho, wo)
	ConvTranspose2DInto(input, weight, bias, stride, pad, out)
	return out
}

// ConvTranspose2DInto is the scratch-buffer form of ConvTranspose2D: it
// writes into a caller-provided output tensor whose contents may be garbage
// (every element is overwritten — the scatter zero-initializes first). The
// output tensor's spatial dims determine the effective output padding.
func ConvTranspose2DInto(input, weight, bias *Tensor, stride, pad int, out *Tensor) {
	ci, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	co, wci, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if ci != wci {
		panic("tensor: ConvTranspose2D channel mismatch")
	}
	if stride < 1 {
		panic("tensor: ConvTranspose2D stride must be >= 1")
	}
	ho, wo := out.Dim(1), out.Dim(2)
	if out.Dim(0) != co || ho < ConvTransposeOutDim(h, kh, stride, pad, 0) ||
		wo < ConvTransposeOutDim(w, kw, stride, pad, 0) {
		panic(fmt.Sprintf("tensor: ConvTranspose2D output [%d,%d,%d] too small for input [%d,%d,%d] k=%dx%d s=%d p=%d",
			out.Dim(0), ho, wo, ci, h, w, kh, kw, stride, pad))
	}
	for oc := 0; oc < co; oc++ {
		plane := out.Data[oc*ho*wo : (oc+1)*ho*wo]
		var b float32
		if bias != nil {
			b = bias.Data[oc]
		}
		for i := range plane {
			plane[i] = b
		}
		for ic := 0; ic < ci; ic++ {
			kbase := ((oc*ci + ic) * kh) * kw
			for ih := 0; ih < h; ih++ {
				irow := input.Data[(ic*h+ih)*w : (ic*h+ih)*w+w]
				for r := 0; r < kh; r++ {
					oh := ih*stride - pad + r
					if oh < 0 || oh >= ho {
						continue
					}
					orow := plane[oh*wo : (oh+1)*wo]
					for c := 0; c < kw; c++ {
						wv := weight.Data[kbase+r*kw+c]
						if wv == 0 {
							continue
						}
						owBase := -pad + c
						for iw, v := range irow {
							ow := iw*stride + owBase
							if ow < 0 || ow >= wo {
								continue
							}
							orow[ow] += v * wv
						}
					}
				}
			}
		}
	}
}

// Upsample2D performs nearest-neighbor upsampling by an integer scale:
// [C,H,W] -> [C,H*scale,W*scale].
func Upsample2D(input *Tensor, scale int) *Tensor {
	out := New(input.Dim(0), input.Dim(1)*scale, input.Dim(2)*scale)
	Upsample2DInto(input, scale, out)
	return out
}

// Upsample2DInto is the allocation-free form of Upsample2D: it writes the
// nearest-neighbor expansion into a caller-provided [C, H*scale, W*scale]
// tensor whose contents may be garbage (every element is overwritten), so
// pooled arena buffers flow through the inference path without allocation.
func Upsample2DInto(input *Tensor, scale int, out *Tensor) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	if scale < 1 {
		panic("tensor: Upsample2D scale must be >= 1")
	}
	if out.Dim(0) != c || out.Dim(1) != h*scale || out.Dim(2) != w*scale {
		panic(fmt.Sprintf("tensor: Upsample2D output [%d,%d,%d] does not match input [%d,%d,%d] x%d",
			out.Dim(0), out.Dim(1), out.Dim(2), c, h, w, scale))
	}
	ho, wo := h*scale, w*scale
	for ic := 0; ic < c; ic++ {
		for ih := 0; ih < h; ih++ {
			src := input.Data[(ic*h+ih)*w : (ic*h+ih)*w+w]
			// Expand one source row into the first destination row of the
			// band, then replicate it for the remaining scale-1 rows.
			first := out.Data[(ic*ho+ih*scale)*wo : (ic*ho+ih*scale)*wo+wo]
			for iw, v := range src {
				dst := first[iw*scale : (iw+1)*scale]
				for j := range dst {
					dst[j] = v
				}
			}
			for r := 1; r < scale; r++ {
				row := out.Data[(ic*ho+ih*scale+r)*wo : (ic*ho+ih*scale+r)*wo+wo]
				copy(row, first)
			}
		}
	}
}

// validPool panics unless the pooling window evenly tiles the input: the
// kernels below implement stride==kernel pooling only, and an indivisible
// H or W would silently truncate output rows (the historical behavior, a
// real bug once non-2^n image-to-image geometries appeared).
func validPool(h, w, k int) {
	if k < 1 {
		panic(fmt.Sprintf("tensor: MaxPool2D window %d must be >= 1", k))
	}
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D window %d does not evenly divide input %dx%d (stride==kernel pooling requires divisibility; pad the input or choose a dividing window)", k, h, w))
	}
}

// MaxPool2D performs max pooling with a square window and equal stride.
// Input [C,H,W] -> output [C,H/k,W/k]. H and W must be divisible by k — the
// kernel is stride==kernel only and panics otherwise rather than silently
// truncating. It also returns the argmax flat indices (into the input plane)
// for backprop.
func MaxPool2D(input *Tensor, k int) (*Tensor, []int) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	validPool(h, w, k)
	ho, wo := h/k, w/k
	out := New(c, ho, wo)
	arg := make([]int, c*ho*wo)
	for ic := 0; ic < c; ic++ {
		for oh := 0; oh < ho; oh++ {
			for ow := 0; ow < wo; ow++ {
				best := float32(-3.4e38)
				bi := 0
				for r := 0; r < k; r++ {
					for cc := 0; cc < k; cc++ {
						idx := (ic*h+oh*k+r)*w + ow*k + cc
						if v := input.Data[idx]; v > best {
							best, bi = v, idx
						}
					}
				}
				o := (ic*ho+oh)*wo + ow
				out.Data[o] = best
				arg[o] = bi
			}
		}
	}
	return out, arg
}

// MaxPool2DInto is the inference-path variant of MaxPool2D: it writes into a
// caller-provided [C, H/k, W/k] tensor (which may hold garbage — every
// element is overwritten) and skips the argmax bookkeeping training needs, so
// pooled scratch buffers flow through without allocation. Like MaxPool2D it
// panics when k does not evenly divide H and W.
func MaxPool2DInto(input *Tensor, k int, out *Tensor) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	validPool(h, w, k)
	ho, wo := h/k, w/k
	for ic := 0; ic < c; ic++ {
		for oh := 0; oh < ho; oh++ {
			for ow := 0; ow < wo; ow++ {
				best := float32(-3.4e38)
				for r := 0; r < k; r++ {
					for cc := 0; cc < k; cc++ {
						if v := input.Data[(ic*h+oh*k+r)*w+ow*k+cc]; v > best {
							best = v
						}
					}
				}
				out.Data[(ic*ho+oh)*wo+ow] = best
			}
		}
	}
}

// AvgPool2DGlobal averages each channel plane to a single value:
// [C,H,W] -> [C,1,1].
func AvgPool2DGlobal(input *Tensor) *Tensor {
	out := New(input.Dim(0), 1, 1)
	AvgPool2DGlobalInto(input, out)
	return out
}

// AvgPool2DGlobalInto is the allocation-free form of AvgPool2DGlobal: it
// writes the per-channel means into a caller-provided [C,1,1] tensor whose
// contents may be garbage (every element is overwritten), so pooled arena
// buffers flow through the inference path without allocation.
func AvgPool2DGlobalInto(input, out *Tensor) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	inv := 1 / float32(h*w)
	for ic := 0; ic < c; ic++ {
		var s float32
		plane := input.Data[ic*h*w : (ic+1)*h*w]
		for _, v := range plane {
			s += v
		}
		out.Data[ic] = s * inv
	}
}

// AddInto writes the elementwise sum a+b into out (which may hold garbage;
// every element is overwritten). The three tensors must have equal length;
// out may alias a or b.
func AddInto(a, b, out *Tensor) {
	bd, od := b.Data, out.Data
	for i, v := range a.Data {
		od[i] = v + bd[i]
	}
}

// FCIntoRange computes out[o] = bias[o] + Σ_i w[o,i]·x[i] for output features
// o in [from, to), with an optional fused ReLU epilogue — the ranged form the
// worker pool parallelizes a fully-connected layer with. w is [Out, In]; x
// and out are flat feature vectors ([C,1,1] views work). out needs no
// pre-initialization. bias may be nil.
func FCIntoRange(out, w, x *Tensor, bias []float32, relu bool, from, to int) {
	in := w.Dim(1)
	xd := x.Data
	for o := from; o < to; o++ {
		row := w.Data[o*in : (o+1)*in]
		var acc float32
		if bias != nil {
			acc = bias[o]
		}
		for i, wv := range row {
			acc += wv * xd[i]
		}
		if relu && acc < 0 {
			acc = 0
		}
		out.Data[o] = acc
	}
}

// SoftmaxInto is the allocation-free form of Softmax: it writes the
// numerically-stabilized softmax of the flat logits in `in` into out (equal
// length, may alias).
func SoftmaxInto(in, out *Tensor) {
	maxv := in.Data[0]
	for _, v := range in.Data {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range in.Data {
		e := exp32(v - maxv)
		out.Data[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
}

// ReLU applies max(0,x) in place and returns its argument.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// Softmax returns softmax over a 1-D logits tensor, numerically stabilized.
func Softmax(logits *Tensor) *Tensor {
	out := New(logits.shape...)
	SoftmaxInto(logits, out)
	return out
}

func exp32(x float32) float32 {
	// Clamp to avoid overflow in float64 exp, then convert.
	if x < -40 {
		return 0
	}
	return float32(expFloat(float64(x)))
}
