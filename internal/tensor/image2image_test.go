package tensor

import (
	"math/rand"
	"testing"
)

func TestConvTransposeOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, op, want int }{
		{4, 3, 1, 0, 0, 6},
		{4, 3, 1, 1, 0, 4},
		{16, 3, 2, 1, 1, 32}, // the SR ×2 head
		{5, 3, 2, 0, 0, 11},
		{3, 3, 3, 1, 2, 9},
	}
	for _, c := range cases {
		if got := ConvTransposeOutDim(c.in, c.k, c.s, c.p, c.op); got != c.want {
			t.Fatalf("ConvTransposeOutDim(%d,%d,%d,%d,%d) = %d, want %d",
				c.in, c.k, c.s, c.p, c.op, got, c.want)
		}
	}
}

func TestConvTranspose2DKnownValues(t *testing.T) {
	// 1×1 input scattered through a 3×3 kernel at stride 1, pad 0 reproduces
	// the kernel scaled by the input value.
	in := FromSlice([]float32{2}, 1, 1, 1)
	w := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	out := ConvTranspose2D(in, w, nil, 1, 0, 0)
	want := []float32{2, 4, 6, 8, 10, 12, 14, 16, 18}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v (full %v)", i, out.Data[i], v, out.Data)
		}
	}

	// Stride 2 separates the scatters: a 2×2 input of ones with a kernel of
	// ones overlaps only where scatter footprints meet.
	in2 := FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2)
	w2 := New(1, 1, 3, 3)
	for i := range w2.Data {
		w2.Data[i] = 1
	}
	out2 := ConvTranspose2D(in2, w2, nil, 2, 0, 0) // 5×5
	// Column overlap at x=2, row overlap at y=2; the center gets all four.
	wantGrid := []float32{
		1, 1, 2, 1, 1,
		1, 1, 2, 1, 1,
		2, 2, 4, 2, 2,
		1, 1, 2, 1, 1,
		1, 1, 2, 1, 1,
	}
	for i, v := range wantGrid {
		if out2.Data[i] != v {
			t.Fatalf("stride-2 out[%d] = %v, want %v", i, out2.Data[i], v)
		}
	}
}

// TestConvTransposeIsConvAdjoint pins the defining property: for a conv with
// weights W [Co,Ci,K,K], its adjoint is the transposed conv with the
// channel-transposed weights Wt [Ci,Co,K,K] (no spatial flip), and
// <ConvT(x, Wt), z> == <x, Conv(z, W)>. This checks the scatter arithmetic
// against the long-standing Conv2D gather without reimplementing either.
func TestConvTransposeIsConvAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const ci, co, hs, ws, k = 3, 4, 5, 6, 3
	for _, g := range []struct{ s, p, op int }{{1, 0, 0}, {1, 1, 0}, {2, 1, 1}, {2, 0, 1}, {3, 1, 2}} {
		w := New(co, ci, k, k)
		w.Randn(rng, 1)
		wt := New(ci, co, k, k)
		for oc := 0; oc < co; oc++ {
			for ic := 0; ic < ci; ic++ {
				copy(wt.Data[(ic*co+oc)*k*k:(ic*co+oc+1)*k*k],
					w.Data[(oc*ci+ic)*k*k:(oc*ci+ic+1)*k*k])
			}
		}
		x := New(co, hs, ws)
		x.Randn(rng, 1)
		up := ConvTranspose2D(x, wt, nil, g.s, g.p, g.op) // co → ci planes
		z := New(ci, up.Dim(1), up.Dim(2))
		z.Randn(rng, 1)
		var lhs float64
		for i, v := range up.Data {
			lhs += float64(v) * float64(z.Data[i])
		}
		down := Conv2D(z, w, nil, ConvSpec{Stride: g.s, Pad: g.p}) // ci → co planes
		if down.Dim(1) != hs || down.Dim(2) != ws {
			t.Fatalf("s=%d p=%d op=%d: adjoint conv yields %dx%d, want %dx%d",
				g.s, g.p, g.op, down.Dim(1), down.Dim(2), hs, ws)
		}
		var rhs float64
		for i, v := range down.Data {
			rhs += float64(v) * float64(x.Data[i])
		}
		if d := lhs - rhs; d > 1e-2 || d < -1e-2 {
			t.Fatalf("s=%d p=%d op=%d: adjoint identity violated: %g vs %g", g.s, g.p, g.op, lhs, rhs)
		}
	}
}

func TestConvTranspose2DBias(t *testing.T) {
	in := FromSlice([]float32{0, 0, 0, 0}, 1, 2, 2)
	w := New(1, 1, 3, 3)
	bias := FromSlice([]float32{1.5}, 1)
	out := ConvTranspose2D(in, w, bias, 2, 1, 1)
	if out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatalf("output %dx%d, want 4x4", out.Dim(1), out.Dim(2))
	}
	for i, v := range out.Data {
		if v != 1.5 {
			t.Fatalf("out[%d] = %v, want bias 1.5 everywhere", i, v)
		}
	}
}

func TestConvTranspose2DPanicsOnMismatch(t *testing.T) {
	in := New(2, 4, 4)
	w := New(3, 3, 3, 3) // wants 3 input channels, input has 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channel mismatch")
		}
	}()
	ConvTranspose2D(in, w, nil, 1, 0, 0)
}

func TestUpsample2DKnownValues(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := Upsample2D(in, 2)
	want := []float32{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// Scale 1 is the identity.
	id := Upsample2D(in, 1)
	for i := range in.Data {
		if id.Data[i] != in.Data[i] {
			t.Fatal("scale-1 upsample is not the identity")
		}
	}
}

func TestUpsample2DIntoPanicsOnBadShape(t *testing.T) {
	in := New(1, 2, 2)
	out := New(1, 5, 4) // 2×2 at scale 2 must be 4×4
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched output dims")
		}
	}()
	Upsample2DInto(in, 2, out)
}

// TestMaxPoolRejectsIndivisible is the regression test for the silent
// truncation bug: pooling a 7×7 map with a 2×2 stride==kernel window used to
// drop the last row/column quietly; it must panic with a clear message.
func TestMaxPoolRejectsIndivisible(t *testing.T) {
	in := New(2, 7, 7)
	for _, f := range []func(){
		func() { MaxPool2D(in, 2) },
		func() { MaxPool2DInto(in, 2, New(2, 3, 3)) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic for indivisible pooling input")
				}
			}()
			f()
		}()
	}
	// Divisible inputs still pool fine.
	ok := New(2, 8, 8)
	if out, _ := MaxPool2D(ok, 2); out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatal("divisible pooling broke")
	}
}
