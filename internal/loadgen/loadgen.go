// Package loadgen is the serving engine's load-generation and SLO harness:
// open-loop (Poisson-arrival) and closed-loop request generators against a
// running patdnn-serve, per-class latency histograms with p50/p95/p99, and
// SLO assertions — the tooling that turns "real-time execution" (the paper's
// headline) from a claim into a continuously checked contract. The
// cmd/patdnn-loadgen binary is a thin flag front-end over Run/RunAll.
//
// Open loop models independent users: arrivals fire on a Poisson process at
// Rate regardless of how the server is doing, so queueing delay and shedding
// under overload are actually observable (a closed loop self-throttles and
// hides them — the coordinated-omission trap). Closed loop models a fixed
// worker fleet and is the right shape for throughput sweeps.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes one generated request stream.
type Spec struct {
	Name string // case label; defaulted from class/mode when empty
	URL  string // serve base URL, e.g. http://localhost:8080
	// URLs lists multiple target base URLs — serve replicas hit directly, or
	// several front doors. Requests rotate round-robin across them, and the
	// result's PerTarget breakdown classifies outcomes per endpoint. When
	// empty, URL is the single target. Fleet runs use this to tell "replica 3
	// is shedding" apart from "the fleet is shedding".
	URLs    []string
	Network string // model name ("VGG", "resnet50", "vgg@v2", ...)
	Dataset string // dataset ("cifar10"); empty for registry models
	Level   string // optional per-request optimization level
	Class   string // scheduling class: "interactive" (default) or "batch"
	// Mode selects the arrival process: "open" (Poisson arrivals at Rate,
	// independent of completions) or "closed" (Clients workers, each sending
	// the next request when the previous completes). Default "closed".
	Mode string
	// Rate is the open-loop mean arrival rate in requests/second.
	Rate float64
	// Clients is the closed-loop concurrency, and the open-loop in-flight
	// cap (arrivals beyond it are dropped and counted as failures — the
	// client ran out of capacity, which is itself a measurement).
	// Defaults: 4 closed, 1024 open.
	Clients int
	// Requests stops the stream after this many arrivals (0 = unlimited,
	// Duration must bound the run instead).
	Requests int
	// Duration stops the stream after this wall-clock time (0 = unlimited,
	// Requests must bound the run instead).
	Duration time.Duration
	// Timeout is the per-request deadline, enforced client-side through the
	// request context and server-side via the request's timeout_ms field.
	Timeout time.Duration
	Seed    int64 // arrival-process RNG seed (default 1)
}

func (s Spec) withDefaults() (Spec, error) {
	if len(s.URLs) == 0 {
		if s.URL == "" {
			return s, errors.New("loadgen: missing URL")
		}
		s.URLs = []string{s.URL}
	}
	for i, u := range s.URLs {
		if u == "" {
			return s, fmt.Errorf("loadgen: empty target URL at index %d", i)
		}
		s.URLs[i] = strings.TrimSuffix(u, "/")
	}
	if s.Network == "" {
		return s, errors.New("loadgen: missing network")
	}
	if s.Mode == "" {
		s.Mode = "closed"
	}
	if s.Mode != "open" && s.Mode != "closed" {
		return s, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", s.Mode)
	}
	if s.Mode == "open" && s.Rate <= 0 {
		return s, errors.New("loadgen: open-loop mode needs Rate > 0")
	}
	if s.Class == "" {
		s.Class = "interactive"
	}
	if s.Clients <= 0 {
		if s.Mode == "open" {
			s.Clients = 1024
		} else {
			s.Clients = 4
		}
	}
	if s.Requests <= 0 && s.Duration <= 0 {
		return s, errors.New("loadgen: need Requests or Duration to bound the run")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Name == "" {
		s.Name = s.Class + "_" + s.Mode
		if s.Mode == "open" {
			s.Name += fmt.Sprintf("_%grps", s.Rate)
		} else {
			s.Name += fmt.Sprintf("_%dclients", s.Clients)
		}
	}
	return s, nil
}

// Result is the measured outcome of one request stream.
type Result struct {
	Name       string  `json:"name"`
	Class      string  `json:"class"`
	Mode       string  `json:"mode"`
	OfferedRPS float64 `json:"offered_rps,omitempty"` // open-loop configured arrival rate
	Clients    int     `json:"clients"`
	// Outcome counts: Sent = OK + Shed + Expired + Failed.
	Sent    int `json:"sent"`
	OK      int `json:"ok"`
	Shed    int `json:"shed"`    // 429s: the server's admission control said no
	Expired int `json:"expired"` // deadline exceeded (client- or server-side)
	Failed  int `json:"failed"`  // transport errors, non-latency HTTP errors, in-flight overflow
	// ServedLevel is the optimization-level tag the server reported executing
	// ("packed", "packedq8", ...), from the first OK /infer response — so a
	// latency report is attributable to the kernel generation that produced
	// it, and a quantized-serving run is distinguishable from an FP32 one.
	ServedLevel string `json:"served_level,omitempty"`
	// FirstError preserves the first failure's message for diagnosis.
	FirstError    string        `json:"first_error,omitempty"`
	Elapsed       time.Duration `json:"-"`
	ElapsedMs     float64       `json:"elapsed_ms"`
	ThroughputRPS float64       `json:"throughput_rps"` // completed OK / elapsed
	// Latency distribution over OK requests only (sheds fail in microseconds
	// and would flatter every percentile they pollute).
	Hist   *Histogram `json:"-"`
	MeanMs float64    `json:"mean_ms"`
	P50Ms  float64    `json:"p50_ms"`
	P95Ms  float64    `json:"p95_ms"`
	P99Ms  float64    `json:"p99_ms"`
	// PerTarget breaks the outcome counts down by serving endpoint: the
	// replica named in the response's X-Patdnn-Replica header when present
	// (router passthrough — attribution by who actually served), else the
	// target URL the request was sent to. Only populated when it would say
	// more than the totals (multiple targets, or replica-attributed
	// responses).
	PerTarget map[string]Outcomes `json:"per_target,omitempty"`
}

// Outcomes is one target's share of a stream's outcome counts.
type Outcomes struct {
	Sent    int `json:"sent"`
	OK      int `json:"ok"`
	Shed    int `json:"shed,omitempty"`
	Expired int `json:"expired,omitempty"`
	Failed  int `json:"failed,omitempty"`
}

// CheckP99 returns an error when the stream's p99 latency violates the
// target, or when the stream completed nothing (an SLO met by serving zero
// requests is not met).
func (r *Result) CheckP99(target time.Duration) error {
	if r.OK == 0 {
		return fmt.Errorf("loadgen: %s: SLO unverifiable, 0 requests completed (%d sent, first error: %s)",
			r.Name, r.Sent, r.FirstError)
	}
	targetMs := float64(target) / 1e6
	if r.P99Ms > targetMs {
		return fmt.Errorf("loadgen: %s: p99 %.2fms exceeds SLO %.2fms (n=%d ok=%d shed=%d expired=%d)",
			r.Name, r.P99Ms, targetMs, r.Sent, r.OK, r.Shed, r.Expired)
	}
	return nil
}

// outcome classifies one request's fate.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
	outcomeExpired
	outcomeFailed
)

// recorder aggregates outcomes across generator workers.
type recorder struct {
	mu        sync.Mutex
	hist      *Histogram
	sent      int
	counts    [4]int
	perTarget map[string]*[4]int // serving endpoint → outcome counts
	level     string             // first served level an OK response reported
	firstErr  string
}

func (rec *recorder) record(target string, o outcome, latMs float64, level string, err error) {
	rec.mu.Lock()
	rec.sent++
	rec.counts[o]++
	if rec.level == "" && level != "" {
		rec.level = level
	}
	if rec.perTarget == nil {
		rec.perTarget = make(map[string]*[4]int)
	}
	tc := rec.perTarget[target]
	if tc == nil {
		tc = new([4]int)
		rec.perTarget[target] = tc
	}
	tc[o]++
	if o == outcomeOK {
		rec.hist.Add(latMs)
	}
	if err != nil && rec.firstErr == "" {
		rec.firstErr = err.Error()
	}
	rec.mu.Unlock()
}

// client is the shared HTTP transport: keep-alive sized for the generator's
// concurrency so connection churn doesn't pollute the latency measurement.
var client = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        2048,
	MaxIdleConnsPerHost: 2048,
	IdleConnTimeout:     30 * time.Second,
}}

// inferBody is the POST /infer request payload.
type inferBody struct {
	Network   string  `json:"network"`
	Dataset   string  `json:"dataset,omitempty"`
	Level     string  `json:"level,omitempty"`
	Class     string  `json:"class,omitempty"`
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// replicaHeader matches serve.ReplicaHeader: the serving replica's identity,
// preserved across the router's proxy hop. (A string literal keeps loadgen
// free of an engine dependency.)
const replicaHeader = "X-Patdnn-Replica"

// doRequest issues one inference against target and classifies the outcome.
// Latency is measured around the full HTTP round trip — what a client
// experiences. servedBy names the endpoint the outcome is attributed to: the
// replica the response's header identifies when present, else the target.
// level is the optimization-level tag an OK response reported executing.
func doRequest(ctx context.Context, spec *Spec, target string, body []byte) (latMs float64, o outcome, servedBy, level string, err error) {
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		target+"/infer", bytes.NewReader(body))
	if err != nil {
		return 0, outcomeFailed, target, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	latMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return latMs, outcomeExpired, target, "", nil
		}
		return latMs, outcomeFailed, target, "", err
	}
	if resp.StatusCode == http.StatusOK {
		// The response names the plan stack that served it; the rest of the
		// payload (probabilities) is drained without decoding.
		var served struct {
			Level string `json:"level"`
		}
		json.NewDecoder(resp.Body).Decode(&served)
		level = served.Level
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	servedBy = resp.Header.Get(replicaHeader)
	if servedBy == "" {
		servedBy = target
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return latMs, outcomeOK, servedBy, level, nil
	case http.StatusTooManyRequests:
		return latMs, outcomeShed, servedBy, "", nil
	case 499, http.StatusGatewayTimeout:
		return latMs, outcomeExpired, servedBy, "", nil
	default:
		return latMs, outcomeFailed, servedBy, "", fmt.Errorf("loadgen: HTTP %d from /infer", resp.StatusCode)
	}
}

// Run executes one request stream to completion and returns its measurements.
// ctx cancellation stops the stream early (the partial result is returned).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(inferBody{
		Network: spec.Network, Dataset: spec.Dataset, Level: spec.Level,
		Class: spec.Class, TimeoutMs: float64(spec.Timeout) / 1e6,
	})
	if err != nil {
		return nil, err
	}
	rec := &recorder{hist: NewHistogram()}
	if spec.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Duration)
		defer cancel()
	}
	start := time.Now()
	if spec.Mode == "open" {
		runOpen(ctx, &spec, body, rec)
	} else {
		runClosed(ctx, &spec, body, rec)
	}
	elapsed := time.Since(start)

	r := &Result{
		Name: spec.Name, Class: spec.Class, Mode: spec.Mode,
		Clients: spec.Clients,
		Sent:    rec.sent,
		OK:      rec.counts[outcomeOK],
		Shed:    rec.counts[outcomeShed],
		Expired: rec.counts[outcomeExpired],
		Failed:  rec.counts[outcomeFailed],
		Elapsed: elapsed, ElapsedMs: float64(elapsed.Nanoseconds()) / 1e6,
		ServedLevel: rec.level,
		FirstError:  rec.firstErr,
		Hist:        rec.hist,
	}
	if spec.Mode == "open" {
		r.OfferedRPS = spec.Rate
	}
	// Per-target attribution is only informative beyond the totals when the
	// stream had several targets or responses named their serving replica.
	if len(rec.perTarget) > 1 || len(spec.URLs) > 1 ||
		(len(rec.perTarget) == 1 && rec.perTarget[spec.URLs[0]] == nil) {
		r.PerTarget = make(map[string]Outcomes, len(rec.perTarget))
		for target, tc := range rec.perTarget {
			r.PerTarget[target] = Outcomes{
				Sent: tc[0] + tc[1] + tc[2] + tc[3],
				OK:   tc[outcomeOK], Shed: tc[outcomeShed],
				Expired: tc[outcomeExpired], Failed: tc[outcomeFailed],
			}
		}
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.OK) / elapsed.Seconds()
	}
	r.MeanMs = rec.hist.Mean()
	r.P50Ms = rec.hist.Quantile(0.50)
	r.P95Ms = rec.hist.Quantile(0.95)
	r.P99Ms = rec.hist.Quantile(0.99)
	return r, nil
}

// runClosed: Clients workers, each issuing the next request as soon as the
// previous one completes, until the request budget or deadline runs out.
func runClosed(ctx context.Context, spec *Spec, body []byte, rec *recorder) {
	var next int64
	var mu sync.Mutex
	take := func() bool {
		if ctx.Err() != nil {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if spec.Requests > 0 && int(next) >= spec.Requests {
			return false
		}
		next++
		return true
	}
	var rr atomic.Uint64 // round-robin cursor over spec.URLs
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for take() {
				target := spec.URLs[int((rr.Add(1)-1)%uint64(len(spec.URLs)))]
				lat, o, servedBy, level, err := doRequest(ctx, spec, target, body)
				if truncated(ctx, o) {
					return
				}
				rec.record(servedBy, o, lat, level, err)
			}
		}()
	}
	wg.Wait()
}

// truncated reports whether a non-OK outcome was caused by the run's own
// bounding context (Duration elapsed / caller cancelled) rather than by the
// request: such in-flight casualties are end-of-run truncation, not
// measurements, and recording them would inflate the expired/failed columns
// with events the server never saw.
func truncated(runCtx context.Context, o outcome) bool {
	return runCtx.Err() != nil && (o == outcomeExpired || o == outcomeFailed)
}

// runOpen: Poisson arrivals at spec.Rate — exponential inter-arrival gaps,
// each arrival fired in its own goroutine regardless of completions, bounded
// only by the in-flight cap (overflow counts as client-side failure, never
// silently absorbed into the arrival process).
func runOpen(ctx context.Context, spec *Spec, body []byte, rec *recorder) {
	rng := rand.New(rand.NewSource(spec.Seed))
	sem := make(chan struct{}, spec.Clients)
	var wg sync.WaitGroup
	sent := 0
	for spec.Requests <= 0 || sent < spec.Requests {
		gap := time.Duration(rng.ExpFloat64() / spec.Rate * float64(time.Second))
		select {
		case <-ctx.Done():
			goto done
		case <-time.After(gap):
		}
		sent++
		target := spec.URLs[(sent-1)%len(spec.URLs)]
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				lat, o, servedBy, level, err := doRequest(ctx, spec, target, body)
				if truncated(ctx, o) {
					return
				}
				rec.record(servedBy, o, lat, level, err)
			}()
		default:
			rec.record(target, outcomeFailed, 0, "", errors.New("loadgen: in-flight cap reached, arrival dropped client-side"))
		}
	}
done:
	wg.Wait()
}

// RunAll executes the specs concurrently (one stream each) and returns the
// results in spec order. This is how an SLO scenario drives foreground
// interactive traffic and saturating background batch traffic at once.
func RunAll(ctx context.Context, specs []Spec) ([]*Result, error) {
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(ctx, specs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
