package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramQuantilesBoundedError(t *testing.T) {
	// Against an exact sorted-sample quantile, the log-bucketed histogram
	// must stay within one bucket's relative width (~9%) at every checked
	// quantile, across a heavy-tailed distribution.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var exact []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.5) * 5 // lognormal ms, median 5ms
		h.Add(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > histGrowth-1 {
			t.Fatalf("q%.3f: hist %.3fms vs exact %.3fms (rel err %.3f > bucket width)", q, got, want, rel)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(3.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 3.5 {
			t.Fatalf("single-sample q%g = %g, want the sample", q, got)
		}
	}
	h.Add(-1) // clamped to 0
	h.Add(1e12)
	if h.Quantile(1) <= 0 {
		t.Fatal("overflow bucket lost the max")
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets %v, want 3 non-empty", bs)
	}
	var n uint64
	for _, b := range bs {
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", n, h.Count())
	}

	h2 := NewHistogram()
	h2.Add(10)
	h2.Merge(h)
	if h2.Count() != 4 {
		t.Fatalf("merged count %d, want 4", h2.Count())
	}
}

// stubServe fakes patdnn-serve's /infer: per-class behavior is programmable
// so outcome classification and per-class measurement are testable without
// compiling a model.
func stubServe(t *testing.T, handler func(class string) (status int, delay time.Duration)) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body inferBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("bad loadgen body: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		status, delay := handler(body.Class)
		if delay > 0 {
			time.Sleep(delay)
		}
		w.WriteHeader(status)
		w.Write([]byte(`{"argmax":0,"level":"packedq8"}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopCountsAndClassification(t *testing.T) {
	var n atomic.Int64
	ts := stubServe(t, func(class string) (int, time.Duration) {
		switch n.Add(1) % 4 {
		case 0:
			return http.StatusTooManyRequests, 0
		case 1:
			return http.StatusGatewayTimeout, 0
		case 2:
			return http.StatusInternalServerError, 0
		default:
			return http.StatusOK, time.Millisecond
		}
	})
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Dataset: "synthetic",
		Mode: "closed", Clients: 4, Requests: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent != 40 || r.OK+r.Shed+r.Expired+r.Failed != 40 {
		t.Fatalf("outcome counts don't partition: %+v", r)
	}
	if r.OK != 10 || r.Shed != 10 || r.Expired != 10 || r.Failed != 10 {
		t.Fatalf("classification off: %+v", r)
	}
	if r.FirstError == "" {
		t.Fatal("500s must surface an error message")
	}
	if int(r.Hist.Count()) != r.OK {
		t.Fatalf("histogram has %d samples, want OK=%d (sheds must not pollute latency)", r.Hist.Count(), r.OK)
	}
	if r.P99Ms < 0.5 || r.ThroughputRPS <= 0 {
		t.Fatalf("latency/throughput implausible: p99=%.3f rps=%.1f", r.P99Ms, r.ThroughputRPS)
	}
}

func TestClientSideTimeoutCountsExpired(t *testing.T) {
	ts := stubServe(t, func(string) (int, time.Duration) { return http.StatusOK, 200 * time.Millisecond })
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Mode: "closed", Clients: 2, Requests: 4,
		Timeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Expired != 4 || r.OK != 0 {
		t.Fatalf("want all 4 expired: %+v", r)
	}
	if err := r.CheckP99(time.Second); err == nil {
		t.Fatal("SLO over zero completed requests must not pass")
	}
}

func TestOpenLoopPoissonArrivals(t *testing.T) {
	ts := stubServe(t, func(string) (int, time.Duration) { return http.StatusOK, 0 })
	const rate, n = 2000.0, 200
	start := time.Now()
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Mode: "open", Rate: rate, Requests: n,
		Duration: 30 * time.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if r.Sent != n {
		t.Fatalf("sent %d, want %d", r.Sent, n)
	}
	// 200 arrivals at 2000/s ≈ 100ms expected; allow wide scheduler slack but
	// catch a broken arrival process (e.g. sleeping 1/rate seconds per loop
	// would take 100x longer, a zero gap would finish instantly on 0 elapsed).
	if elapsed > 5 {
		t.Fatalf("open loop took %.2fs for what should be ~0.1s of arrivals", elapsed)
	}
	if r.OK != n {
		t.Fatalf("ok %d, want %d: %+v", r.OK, n, r)
	}
}

func TestOpenLoopInFlightCapDropsNotBlocks(t *testing.T) {
	ts := stubServe(t, func(string) (int, time.Duration) { return http.StatusOK, 300 * time.Millisecond })
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Mode: "open", Rate: 1000, Requests: 50,
		Clients: 2, Duration: 10 * time.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 arrivals in ~50ms against 300ms service and 2 in-flight slots: the
	// vast majority must be dropped client-side, not queued into a blocking
	// arrival process.
	if r.Failed < 40 {
		t.Fatalf("in-flight cap absorbed arrivals: %+v", r)
	}
	if r.Sent != 50 {
		t.Fatalf("sent %d, want 50", r.Sent)
	}
}

func TestRunAllAndReport(t *testing.T) {
	ts := stubServe(t, func(class string) (int, time.Duration) {
		if class == "batch" {
			return http.StatusTooManyRequests, 0
		}
		return http.StatusOK, time.Millisecond
	})
	results, err := RunAll(context.Background(), []Spec{
		{URL: ts.URL, Network: "tiny", Class: "interactive", Mode: "closed", Clients: 2, Requests: 20},
		{URL: ts.URL, Network: "tiny", Class: "batch", Mode: "closed", Clients: 2, Requests: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OK != 20 || results[1].Shed != 20 {
		t.Fatalf("per-class streams mixed up: %+v / %+v", results[0], results[1])
	}
	if err := results[0].CheckP99(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := results[0].CheckP99(time.Nanosecond); err == nil {
		t.Fatal("violated SLO must error")
	}

	path := filepath.Join(t.TempDir(), "LOADGEN.json")
	if err := WriteReport(path, "tiny/synthetic", results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || len(rep.Cases) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	c := rep.Cases[0]
	if c.Class != "interactive" || c.OK != 20 || c.ThroughputRPS <= 0 || len(c.Hist) == 0 {
		t.Fatalf("case 0: %+v", c)
	}
	// The report labels which kernel generation served the OK stream; a
	// stream with no OK responses has no level to attribute.
	if c.ServedLevel != "packedq8" {
		t.Fatalf("case 0 served_level %q, want packedq8", c.ServedLevel)
	}
	if rep.Cases[1].Shed != 20 || len(rep.Cases[1].Hist) != 0 {
		t.Fatalf("case 1: %+v", rep.Cases[1])
	}
	if rep.Cases[1].ServedLevel != "" {
		t.Fatalf("all-shed stream has served_level %q, want empty", rep.Cases[1].ServedLevel)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},                                  // no URL
		{URL: "x"},                          // no network
		{URL: "x", Network: "n"},            // unbounded
		{URL: "x", Network: "n", Mode: "o"}, // bad mode
		{URL: "x", Network: "n", Mode: "open", Requests: 1}, // open without rate
	}
	for i, s := range bad {
		if _, err := Run(context.Background(), s); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestMultiTargetRoundRobinPerTarget(t *testing.T) {
	a := stubServe(t, func(string) (int, time.Duration) { return http.StatusOK, 0 })
	b := stubServe(t, func(string) (int, time.Duration) { return http.StatusTooManyRequests, 0 })
	r, err := Run(context.Background(), Spec{
		URLs: []string{a.URL, b.URL}, Network: "tiny",
		Mode: "closed", Clients: 4, Requests: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent != 40 || r.OK != 20 || r.Shed != 20 {
		t.Fatalf("totals off: %+v", r)
	}
	// Round-robin over two targets splits an even budget exactly in half,
	// and outcomes attribute to the target that produced them.
	if len(r.PerTarget) != 2 {
		t.Fatalf("PerTarget has %d entries, want 2: %+v", len(r.PerTarget), r.PerTarget)
	}
	if o := r.PerTarget[a.URL]; o.Sent != 20 || o.OK != 20 || o.Shed != 0 {
		t.Fatalf("target a: %+v", o)
	}
	if o := r.PerTarget[b.URL]; o.Sent != 20 || o.Shed != 20 || o.OK != 0 {
		t.Fatalf("target b: %+v", o)
	}
}

func TestReplicaHeaderAttribution(t *testing.T) {
	// A router-fronted run has one target URL but many serving replicas: the
	// response header, not the URL, is the attribution key.
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if n.Add(1)%2 == 0 {
			w.Header().Set("X-Patdnn-Replica", "replica-even")
		} else {
			w.Header().Set("X-Patdnn-Replica", "replica-odd")
		}
		w.Write([]byte(`{"argmax":0}`))
	}))
	t.Cleanup(ts.Close)
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Mode: "closed", Clients: 2, Requests: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK != 30 {
		t.Fatalf("totals off: %+v", r)
	}
	if len(r.PerTarget) != 2 {
		t.Fatalf("PerTarget has %d entries, want 2 replicas: %+v", len(r.PerTarget), r.PerTarget)
	}
	if got := r.PerTarget["replica-even"].OK + r.PerTarget["replica-odd"].OK; got != 30 {
		t.Fatalf("replica attribution lost requests: %+v", r.PerTarget)
	}
}

func TestSingleTargetOmitsPerTarget(t *testing.T) {
	ts := stubServe(t, func(string) (int, time.Duration) { return http.StatusOK, 0 })
	r, err := Run(context.Background(), Spec{
		URL: ts.URL, Network: "tiny", Mode: "closed", Clients: 2, Requests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PerTarget != nil {
		t.Fatalf("plain single-target run should omit PerTarget, got %+v", r.PerTarget)
	}
}
