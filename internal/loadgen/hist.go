package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed latency histogram: bucket upper bounds grow
// geometrically from 1µs to beyond 5 minutes, so quantile error is bounded at
// a constant relative factor (~9% per bucket) across six orders of magnitude
// — the property an SLO gate needs (a p99 of 50ms must not be reported as
// 80ms just because the buckets were linear and coarse at the tail).
//
// The zero value is not usable; call NewHistogram. Histogram is not
// goroutine-safe: the generators serialize Add through their recorder's
// mutex. Merge combines finished histograms (e.g. aggregating runs).
type Histogram struct {
	bounds []float64 // bucket upper bounds in ms, ascending
	counts []uint64  // counts[i]: observations <= bounds[i] (and > bounds[i-1])
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// histGrowth is the geometric bucket growth factor: 2^(1/8) ≈ 1.0905, i.e.
// 8 buckets per doubling, ~230 buckets for the full 1µs..300s range.
const histGrowth = 1.0905077326652577

// NewHistogram creates an empty latency histogram.
func NewHistogram() *Histogram {
	var bounds []float64
	for b := 1e-3; b < 300_000; b *= histGrowth { // 0.001ms .. 300s
		bounds = append(bounds, b)
	}
	bounds = append(bounds, math.Inf(1))
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add records one latency observation in milliseconds.
func (h *Histogram) Add(ms float64) {
	if ms < 0 || math.IsNaN(ms) {
		ms = 0
	}
	i := sort.SearchFloat64s(h.bounds, ms)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.n++
	h.sum += ms
	if ms < h.min {
		h.min = ms
	}
	if ms > h.max {
		h.max = ms
	}
}

// Merge folds other into h. Both must come from NewHistogram (same bounds).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the mean latency in ms (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (q in [0,1]) in ms, interpolated linearly
// inside the containing bucket and clamped to the observed min/max so a
// single-sample histogram reports the sample, not a bucket edge.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if math.IsInf(hi, 1) {
				hi = h.max
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			v := lo + frac*(hi-lo)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Bucket is one non-empty histogram bucket in a JSON report: the inclusive
// upper bound in ms and the count of observations at or below it (and above
// the previous bucket's bound).
type Bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Buckets returns the non-empty buckets in ascending bound order. The last
// (overflow) bucket reports the observed max as its bound.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := h.bounds[i]
		if math.IsInf(b, 1) {
			b = h.max
		}
		out = append(out, Bucket{LeMs: round3(b), Count: c})
	}
	return out
}

// String summarizes the distribution for log lines.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
