package loadgen

// JSON artifact output: loadgen writes its per-class results in the same
// BENCH_serve schema cmd/patdnn-bench emits, so the trajectory tooling (and
// the benchgate regression gate) consume histograms from either producer.
// The loadgen-specific fields — class, mode, offered rate, p95, outcome
// counts, histogram buckets — are additive; the shared core (name, clients,
// requests, throughput_rps, p50_ms, p99_ms) keeps its v2 meaning.

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Schema identifies the report format; it matches cmd/patdnn-bench's
// BENCH_serve schema so one toolchain reads both.
const Schema = "patdnn/bench-serve/v2"

// Case is one stream's row in the report.
type Case struct {
	Name          string  `json:"name"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// Loadgen-specific (additive over the bench sweep's cases):
	ServedLevel string   `json:"served_level,omitempty"`
	Class       string   `json:"class,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	OfferedRPS  float64  `json:"offered_rps,omitempty"`
	MeanMs      float64  `json:"mean_ms,omitempty"`
	P95Ms       float64  `json:"p95_ms,omitempty"`
	OK          int      `json:"ok"`
	Shed        int      `json:"shed,omitempty"`
	Expired     int      `json:"expired,omitempty"`
	Failed      int      `json:"failed,omitempty"`
	Hist        []Bucket `json:"hist,omitempty"`
	// PerTarget carries the fleet breakdown (outcomes per replica/endpoint)
	// for multi-target or router-fronted runs.
	PerTarget map[string]Outcomes `json:"per_target,omitempty"`
}

// Report is the artifact written by WriteReport.
type Report struct {
	Schema    string    `json:"schema"`
	Model     string    `json:"model"`
	Go        string    `json:"go"`
	Workers   int       `json:"workers"`
	Timestamp time.Time `json:"timestamp"`
	Cases     []Case    `json:"cases"`
}

// NewReport assembles the report for a finished run; model names the target
// ("VGG/cifar10").
func NewReport(model string, results []*Result) *Report {
	rep := &Report{
		Schema:    Schema,
		Model:     model,
		Go:        runtime.Version(),
		Workers:   runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC(),
	}
	for _, r := range results {
		rep.Cases = append(rep.Cases, Case{
			Name:          r.Name,
			Clients:       r.Clients,
			Requests:      r.Sent,
			ThroughputRPS: r.ThroughputRPS,
			P50Ms:         r.P50Ms,
			P99Ms:         r.P99Ms,
			ServedLevel:   r.ServedLevel,
			Class:         r.Class,
			Mode:          r.Mode,
			OfferedRPS:    r.OfferedRPS,
			MeanMs:        r.MeanMs,
			P95Ms:         r.P95Ms,
			OK:            r.OK,
			Shed:          r.Shed,
			Expired:       r.Expired,
			Failed:        r.Failed,
			Hist:          r.Hist.Buckets(),
			PerTarget:     r.PerTarget,
		})
	}
	return rep
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(path, model string, results []*Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(NewReport(model, results)); err != nil {
		f.Close()
		return err
	}
	// A close error means a truncated artifact; surface it, don't mask it.
	return f.Close()
}
