// Package pruned defines the pattern-pruned convolution representation shared
// between the training side (internal/admm produces it from real ADMM runs)
// and the compiler side (internal/compiler/* consumes it). It also provides a
// deterministic generator that synthesizes pruned layers at VGG/ResNet scale
// for the compiler experiments, where full training is not required: patterns
// are assigned by the same L2-projection rule ADMM uses, applied to random
// pre-trained-like weights.
package pruned

import (
	"fmt"
	"math/rand"
	"sort"

	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/tensor"
)

// Conv is a convolution layer after kernel-pattern and connectivity pruning.
type Conv struct {
	Name        string
	OutC, InC   int
	KH, KW      int
	Stride, Pad int
	OutH, OutW  int
	InH, InW    int
	// Depthwise marks a depthwise convolution: one kernel per channel
	// (InC == 1 per filter, the input channel equals the filter index).
	// Pattern pruning applies per kernel; connectivity pruning does not
	// (removing a depthwise kernel removes its whole channel).
	Depthwise bool
	Set       []pattern.Pattern // candidate set; pattern ID i+1 = Set[i]
	// IDs[f*InC+k] is the pattern ID of kernel k in filter f:
	// 0 = kernel removed by connectivity pruning, 1..len(Set) otherwise.
	IDs []int
	// Weights is the pruned dense tensor [OutC, InC, KH, KW]; zero outside
	// pattern positions. May be nil for stats-only layers at large scale.
	Weights *tensor.Tensor
}

// ID returns the pattern ID of kernel (filter f, input channel k).
func (c *Conv) ID(f, k int) int { return c.IDs[f*c.InC+k] }

// InChannels returns the number of input feature-map channels the layer
// consumes: InC for standard convs, OutC for depthwise.
func (c *Conv) InChannels() int {
	if c.Depthwise {
		return c.OutC
	}
	return c.InC
}

// InputChannel maps a (filter, kernel-channel) pair to the input feature-map
// channel the kernel reads: k for standard convs, f for depthwise.
func (c *Conv) InputChannel(f, k int) int {
	if c.Depthwise {
		return f
	}
	return k
}

// PatternOf returns the pattern for kernel (f,k); Empty if pruned.
func (c *Conv) PatternOf(f, k int) pattern.Pattern {
	id := c.ID(f, k)
	if id == 0 {
		return pattern.Empty
	}
	return c.Set[id-1]
}

// FilterLength returns the number of non-empty kernels in filter f — the
// "length" notion Filter Kernel Reorder groups by.
func (c *Conv) FilterLength(f int) int {
	n := 0
	for k := 0; k < c.InC; k++ {
		if c.ID(f, k) != 0 {
			n++
		}
	}
	return n
}

// NonEmptyKernels returns the total number of retained kernels.
func (c *Conv) NonEmptyKernels() int {
	n := 0
	for _, id := range c.IDs {
		if id != 0 {
			n++
		}
	}
	return n
}

// NNZ returns the retained weight count: entries-per-pattern summed over all
// retained kernels.
func (c *Conv) NNZ() int {
	n := 0
	for _, id := range c.IDs {
		if id != 0 {
			n += c.Set[id-1].Entries()
		}
	}
	return n
}

// MaxFilterNNZ returns the largest retained weight count of any single
// filter. Tile sizing must budget for this, not the layer mean: under skewed
// filter sparsity the heaviest filter's weight stream is what actually
// contends with the activation tile for L1 residency.
func (c *Conv) MaxFilterNNZ() int {
	best := 0
	for f := 0; f < c.OutC; f++ {
		n := 0
		for k := 0; k < c.InC; k++ {
			if id := c.IDs[f*c.InC+k]; id != 0 {
				n += c.Set[id-1].Entries()
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

// TotalWeights returns the dense weight count.
func (c *Conv) TotalWeights() int { return c.OutC * c.InC * c.KH * c.KW }

// CompressionRate returns dense/retained weight ratio.
func (c *Conv) CompressionRate() float64 {
	nnz := c.NNZ()
	if nnz == 0 {
		return 0
	}
	return float64(c.TotalWeights()) / float64(nnz)
}

// Validate checks internal consistency: ID ranges, weight zeros matching
// patterns. Layers without weights validate IDs only.
func (c *Conv) Validate() error {
	if len(c.IDs) != c.OutC*c.InC {
		return fmt.Errorf("pruned: %s: IDs len %d != %d", c.Name, len(c.IDs), c.OutC*c.InC)
	}
	for i, id := range c.IDs {
		if id < 0 || id > len(c.Set) {
			return fmt.Errorf("pruned: %s: kernel %d has invalid pattern ID %d", c.Name, i, id)
		}
	}
	if c.Weights == nil {
		return nil
	}
	for f := 0; f < c.OutC; f++ {
		for k := 0; k < c.InC; k++ {
			p := c.PatternOf(f, k)
			off := (f*c.InC + k) * c.KH * c.KW
			for pos := 0; pos < c.KH*c.KW; pos++ {
				if !p.Has(pos) && c.Weights.Data[off+pos] != 0 {
					return fmt.Errorf("pruned: %s: kernel (%d,%d) pos %d nonzero outside pattern",
						c.Name, f, k, pos)
				}
			}
		}
	}
	return nil
}

// FromWeights builds a pruned Conv from a dense weight tensor by (1)
// projecting each kernel onto its best pattern from set and (2) keeping only
// the keepKernels kernels with the largest retained L2 norm (connectivity
// pruning). The weights are modified in place.
func FromWeights(name string, w *tensor.Tensor, set []pattern.Pattern, keepKernels int, spec ConvGeom) *Conv {
	outC, inC, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if kh != 3 || kw != 3 {
		panic("pruned: FromWeights requires 3x3 kernels")
	}
	c := &Conv{
		Name: name, OutC: outC, InC: inC, KH: kh, KW: kw,
		Stride: spec.Stride, Pad: spec.Pad,
		InH: spec.InH, InW: spec.InW, OutH: spec.OutH, OutW: spec.OutW,
		Set: set, IDs: make([]int, outC*inC), Weights: w,
	}
	type kn struct {
		idx  int
		norm float64
	}
	norms := make([]kn, 0, outC*inC)
	// First assign the best pattern per kernel (projection), recording the
	// retained norm used for connectivity ranking.
	for f := 0; f < outC; f++ {
		for k := 0; k < inC; k++ {
			off := (f*inC + k) * 9
			kernel := w.Data[off : off+9]
			p := pattern.Best(kernel, set)
			p.Apply(kernel)
			c.IDs[f*inC+k] = pattern.IDOf(p, set)
			norms = append(norms, kn{f*inC + k, p.RetainedNorm(kernel)})
		}
	}
	if keepKernels < len(norms) {
		sort.Slice(norms, func(a, b int) bool {
			if norms[a].norm != norms[b].norm {
				return norms[a].norm > norms[b].norm
			}
			return norms[a].idx < norms[b].idx
		})
		for _, victim := range norms[keepKernels:] {
			c.IDs[victim.idx] = 0
			off := victim.idx * 9
			for i := 0; i < 9; i++ {
				w.Data[off+i] = 0
			}
		}
	}
	return c
}

// ConvGeom carries the spatial geometry FromWeights cannot infer from the
// weight tensor.
type ConvGeom struct {
	Stride, Pad          int
	InH, InW, OutH, OutW int
}

// GeomOf extracts ConvGeom from a model layer.
func GeomOf(l *model.Layer) ConvGeom {
	return ConvGeom{
		Stride: l.Stride, Pad: l.Pad,
		InH: l.InH, InW: l.InW, OutH: l.OutH, OutW: l.OutW,
	}
}

// Generate synthesizes a pruned layer for a model conv descriptor: random
// Xavier weights, pattern projection, and connectivity pruning keeping
// 1/connRate of kernels (connRate = 3.6 reproduces the paper's uniform
// connectivity pruning). Deterministic in seed. withWeights=false produces a
// stats-only layer (IDs but nil weights), cheap enough for the largest VGG
// layers.
func Generate(l *model.Layer, set []pattern.Pattern, connRate float64, seed int64, withWeights bool) *Conv {
	if (!l.IsConv() && l.Kind != model.ConvTranspose) || l.KH != 3 || l.KW != 3 {
		panic("pruned: Generate requires a 3x3 conv layer, got " + l.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	w := l.AllocWeights(rng)
	if l.Kind == model.DWConv {
		// Depthwise: pattern pruning only — every kernel survives.
		c := FromWeights(l.Name, w, set, l.OutC, GeomOf(l))
		c.Depthwise = true
		if !withWeights {
			c.Weights = nil
		}
		return c
	}
	keep := int(float64(l.OutC*l.InC)/connRate + 0.5)
	if keep < 1 {
		keep = 1
	}
	c := FromWeights(l.Name, w, set, keep, GeomOf(l))
	if !withWeights {
		c.Weights = nil
	}
	return c
}
