package pruned

import (
	"math/rand"
	"testing"
	"testing/quick"

	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/tensor"
)

func smallGeom() ConvGeom {
	return ConvGeom{Stride: 1, Pad: 1, InH: 8, InW: 8, OutH: 8, OutW: 8}
}

func TestFromWeightsAssignsAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(4, 3, 3, 3)
	w.Randn(rng, 1)
	set := pattern.Canonical(8)
	c := FromWeights("test", w, set, 4*3, smallGeom()) // keep all kernels
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NonEmptyKernels() != 12 {
		t.Fatalf("kernels = %d, want 12", c.NonEmptyKernels())
	}
	// Each kernel keeps exactly 4 of 9 weights.
	if c.NNZ() != 12*4 {
		t.Fatalf("NNZ = %d, want 48", c.NNZ())
	}
	// Compression = 9/4 = 2.25 with no connectivity pruning.
	if got := c.CompressionRate(); got < 2.24 || got > 2.26 {
		t.Fatalf("compression = %v, want 2.25", got)
	}
}

func TestFromWeightsConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.New(8, 9, 3, 3)
	w.Randn(rng, 1)
	set := pattern.Canonical(8)
	keep := 20 // 72 kernels total, keep 20 -> 3.6x connectivity
	c := FromWeights("conn", w, set, keep, smallGeom())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NonEmptyKernels() != keep {
		t.Fatalf("kept %d kernels, want %d", c.NonEmptyKernels(), keep)
	}
	// Joint compression: 9/4 * 72/20 = 8.1x, the paper's ~8x on VGG.
	if got := c.CompressionRate(); got < 8.0 || got > 8.2 {
		t.Fatalf("compression = %v, want ~8.1", got)
	}
}

func TestConnectivityKeepsLargestKernels(t *testing.T) {
	w := tensor.New(2, 2, 3, 3)
	// Kernel (0,0) large, (1,1) large, others tiny.
	for i := 0; i < 9; i++ {
		w.Data[i] = 10
		w.Data[3*9+i] = 10
		w.Data[1*9+i] = 0.01
		w.Data[2*9+i] = 0.01
	}
	set := pattern.Canonical(8)
	c := FromWeights("sel", w, set, 2, smallGeom())
	if c.ID(0, 0) == 0 || c.ID(1, 1) == 0 {
		t.Fatal("large kernels were pruned")
	}
	if c.ID(0, 1) != 0 || c.ID(1, 0) != 0 {
		t.Fatal("small kernels were kept")
	}
}

func TestFilterLength(t *testing.T) {
	c := &Conv{OutC: 2, InC: 3, KH: 3, KW: 3, Set: pattern.Canonical(8),
		IDs: []int{1, 0, 2, 0, 0, 3}}
	if c.FilterLength(0) != 2 || c.FilterLength(1) != 1 {
		t.Fatalf("filter lengths = %d,%d", c.FilterLength(0), c.FilterLength(1))
	}
	if c.PatternOf(0, 1) != pattern.Empty {
		t.Fatal("pruned kernel should map to Empty pattern")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := tensor.New(2, 2, 3, 3)
	w.Randn(rng, 1)
	set := pattern.Canonical(8)
	c := FromWeights("bad", w, set, 4, smallGeom())
	// Corrupt: set a weight outside its pattern.
	p := c.PatternOf(0, 0)
	for pos := 0; pos < 9; pos++ {
		if !p.Has(pos) {
			c.Weights.Data[pos] = 1
			break
		}
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate missed out-of-pattern weight")
	}
	// Corrupt IDs range.
	c2 := FromWeights("bad2", w.Clone(), set, 4, smallGeom())
	c2.IDs[0] = 99
	if err := c2.Validate(); err == nil {
		t.Fatal("Validate missed bad pattern ID")
	}
}

func TestGenerateAtVGGScale(t *testing.T) {
	m := model.VGG16("imagenet")
	l := m.ConvLayers()[3] // L4: [128,128,3,3]
	set := pattern.Canonical(8)
	c := Generate(l, set, 3.6, 7, false)
	if c.Weights != nil {
		t.Fatal("stats-only generation should drop weights")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	kernels := 128.0 * 128.0
	wantKeep := int(kernels/3.6 + 0.5)
	if c.NonEmptyKernels() != wantKeep {
		t.Fatalf("kept %d, want %d", c.NonEmptyKernels(), wantKeep)
	}
	// Deterministic in seed.
	c2 := Generate(l, set, 3.6, 7, false)
	for i := range c.IDs {
		if c.IDs[i] != c2.IDs[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	c3 := Generate(l, set, 3.6, 8, false)
	diff := 0
	for i := range c.IDs {
		if c.IDs[i] != c3.IDs[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical assignment")
	}
}

func TestGeneratePanicsOnNon3x3(t *testing.T) {
	m := model.ResNet50("imagenet")
	var oneByOne *model.Layer
	for _, l := range m.ConvLayers() {
		if l.KH == 1 {
			oneByOne = l
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1x1 conv")
		}
	}()
	Generate(oneByOne, pattern.Canonical(8), 3.6, 1, false)
}

// Property: for any seed, generated layers are valid and every retained
// kernel has a pattern from the set with exactly 4 entries.
func TestGenerateProperty(t *testing.T) {
	m := model.VGG16("cifar10")
	l := m.ConvLayers()[1]
	set := pattern.Canonical(6)
	f := func(seed int64) bool {
		c := Generate(l, set, 3.6, seed, true)
		if c.Validate() != nil {
			return false
		}
		for _, id := range c.IDs {
			if id != 0 && c.Set[id-1].Entries() != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
