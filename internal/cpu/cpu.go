// Package cpu probes the runtime CPU features the SIMD microkernels dispatch
// on. The packed FKW backend's inner loops (internal/simd) have hand-written
// vector implementations per architecture — AVX2+FMA on amd64, NEON on arm64
// — and this package decides, once at process start, whether the running core
// can execute them. Everything here is read-only after init; the exported
// flags are plain bools so the dispatch check in a kernel prologue costs one
// predictable branch.
//
// Building with the noasm tag (or on an architecture without kernels) forces
// every flag false, which makes the pure-Go microkernels the selected
// implementation everywhere — the fallback contract DESIGN.md documents.
package cpu

// Feature flags, fixed at init.
var (
	// HasAVX2FMA reports an amd64 core with AVX2, FMA3, and OS support for
	// saving the YMM state (OSXSAVE + XCR0 bits 1-2). All three are required:
	// the microkernels broadcast weights into YMM registers and accumulate
	// with VFMADD231PS.
	HasAVX2FMA bool

	// HasNEON reports an arm64 core. Advanced SIMD (NEON) is a mandatory part
	// of AArch64, so on arm64 builds this is unconditionally true unless the
	// noasm tag disabled the kernels.
	HasNEON bool
)

// Arch names the vector implementation the probe selected: "avx2", "neon",
// or "generic" when no hand-written kernel can run. Surfaced through
// /stats and the tuning-DB key so per-arch tuning decisions never transfer
// to a core that executes different code.
func Arch() string {
	switch {
	case HasAVX2FMA:
		return "avx2"
	case HasNEON:
		return "neon"
	}
	return "generic"
}
