//go:build arm64 && !noasm

package cpu

func init() {
	// Advanced SIMD is architecturally mandatory on AArch64; no probe needed.
	HasNEON = true
}
