//go:build amd64 && !noasm

package cpu

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked before calling).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return
	}
	// The OS must save/restore XMM and YMM state across context switches,
	// or executing VEX-encoded code faults.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	HasAVX2FMA = ebx7&avx2 != 0
}
