//go:build noasm || !(amd64 || arm64)

package cpu

// No hand-written kernels for this build: the flags keep their false zero
// values and Arch() reports "generic".
