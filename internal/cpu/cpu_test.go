package cpu

import "testing"

// The probe must agree with itself: Arch names exactly the flag that is set,
// and at most one vector implementation is ever selected.
func TestArchConsistent(t *testing.T) {
	if HasAVX2FMA && HasNEON {
		t.Fatal("both AVX2 and NEON reported on one core")
	}
	switch Arch() {
	case "avx2":
		if !HasAVX2FMA {
			t.Fatal("Arch avx2 without HasAVX2FMA")
		}
	case "neon":
		if !HasNEON {
			t.Fatal("Arch neon without HasNEON")
		}
	case "generic":
		if HasAVX2FMA || HasNEON {
			t.Fatal("Arch generic with a vector flag set")
		}
	default:
		t.Fatalf("unknown Arch %q", Arch())
	}
}
