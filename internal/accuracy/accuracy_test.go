package accuracy

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f, want %.2f (±%.2f)", what, got, want, tol)
	}
}

func TestTable3Anchors(t *testing.T) {
	// Table 3: Top-5 accuracy on kernel pattern pruning only.
	approx(t, Baseline("VGG", "imagenet"), 91.7, 0.01, "VGG baseline")
	approx(t, PatternOnly("VGG", "imagenet", 6), 92.1, 0.05, "VGG 6-pattern")
	approx(t, PatternOnly("VGG", "imagenet", 8), 92.3, 0.05, "VGG 8-pattern")
	approx(t, PatternOnly("VGG", "imagenet", 12), 92.4, 0.05, "VGG 12-pattern")
	approx(t, Baseline("RNT", "imagenet"), 92.7, 0.01, "RNT baseline")
	approx(t, PatternOnly("RNT", "imagenet", 6), 92.7, 0.05, "RNT 6-pattern")
	approx(t, PatternOnly("RNT", "imagenet", 8), 92.8, 0.05, "RNT 8-pattern")
	approx(t, PatternOnly("RNT", "imagenet", 12), 93.0, 0.05, "RNT 12-pattern")
}

func TestTable5Anchors(t *testing.T) {
	// Table 5: joint 8 patterns + 3.6x connectivity.
	approx(t, Joint("VGG", "imagenet", 8, 3.6), 91.6, 0.05, "VGG joint")
	approx(t, Loss("VGG", "imagenet", 8, 3.6), 0.1, 0.05, "VGG loss")
	approx(t, Joint("RNT", "imagenet", 8, 3.6), 92.5, 0.05, "RNT joint")
	approx(t, Loss("RNT", "imagenet", 8, 3.6), 0.2, 0.05, "RNT loss")
	approx(t, Joint("MBNT", "imagenet", 8, 3.6), 90.3, 0.05, "MBNT joint")
	// CIFAR: pruning *improves* accuracy (negative loss in Table 5).
	approx(t, Joint("VGG", "cifar10", 8, 3.6), 93.9, 0.05, "VGG cifar joint")
	approx(t, Loss("VGG", "cifar10", 8, 3.6), -0.4, 0.05, "VGG cifar loss")
	approx(t, Joint("RNT", "cifar10", 8, 3.6), 95.6, 0.05, "RNT cifar joint")
	approx(t, Joint("MBNT", "cifar10", 8, 3.6), 94.6, 0.05, "MBNT cifar joint")
}

func TestTable7Anchors(t *testing.T) {
	// Table 7: VGG/ImageNet with 3.6x connectivity across pattern counts.
	approx(t, Joint("VGG", "imagenet", 6, 3.6), 91.4, 0.05, "VGG 6-pat joint")
	approx(t, Joint("VGG", "imagenet", 8, 3.6), 91.6, 0.05, "VGG 8-pat joint")
	approx(t, Joint("VGG", "imagenet", 12, 3.6), 91.7, 0.05, "VGG 12-pat joint")
}

func TestMonotonicity(t *testing.T) {
	// More patterns never hurt.
	for _, net := range []string{"VGG", "RNT", "MBNT"} {
		prev := PatternOnly(net, "imagenet", 2)
		for _, k := range []int{4, 6, 8, 12, 20} {
			cur := PatternOnly(net, "imagenet", k)
			if cur < prev-1e-9 {
				t.Errorf("%s: accuracy decreased from k-1 to k=%d", net, k)
			}
			prev = cur
		}
	}
	// Higher connectivity rates cost monotonically more.
	prev := Joint("VGG", "imagenet", 8, 1)
	for _, r := range []float64{2, 3.6, 5.3, 8, 18} {
		cur := Joint("VGG", "imagenet", 8, r)
		if cur > prev+1e-9 {
			t.Errorf("connectivity rate %.1f improved accuracy", r)
		}
		prev = cur
	}
}

func TestTooFewPatternsHurt(t *testing.T) {
	for _, net := range []string{"VGG", "RNT", "MBNT"} {
		if PatternOnly(net, "imagenet", 1) >= Baseline(net, "imagenet") {
			t.Errorf("%s: 1 pattern should lose accuracy", net)
		}
	}
}

func TestStructuredWorseThanPattern(t *testing.T) {
	// Section 2.4: structured pruning at 3.8x loses 1.0% on VGG, while the
	// pattern scheme at a *higher* total rate (8x) loses only 0.1%.
	structAcc := Structured("VGG", "imagenet", 3.8)
	approx(t, structAcc, 90.7, 0.05, "VGG structured 3.8x")
	jointAcc := Joint("VGG", "imagenet", 8, 3.6)
	if jointAcc <= structAcc {
		t.Errorf("pattern (%.2f) must beat structured (%.2f)", jointAcc, structAcc)
	}
}

func TestNonStructuredNearLossless(t *testing.T) {
	// ADMM-NN non-structured: ~no loss at 8x.
	acc := NonStructured("VGG", "imagenet", 8)
	if acc < 91.4 {
		t.Errorf("non-structured 8x = %.2f, want >= 91.4", acc)
	}
	// Ours should be within noise of ADMM-NN at the same rate (Table 4's
	// "close to non-structured" claim).
	ours := Joint("VGG", "imagenet", 8, 3.6)
	if math.Abs(ours-acc) > 1.0 {
		t.Errorf("ours %.2f vs non-structured %.2f differ by > 1.0", ours, acc)
	}
}

func TestUnknownNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Baseline("AlexNet", "imagenet")
}

func TestCurveInterpolationAndClamping(t *testing.T) {
	c := anchorCurve{1: 0, 3: 2}
	if got := c.at(2); got != 1 {
		t.Fatalf("interp = %v, want 1", got)
	}
	if got := c.at(0); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
	if got := c.at(10); got != 2 {
		t.Fatalf("clamp high = %v", got)
	}
}
