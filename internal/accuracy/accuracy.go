// Package accuracy provides the calibrated analytical accuracy model used in
// place of full ImageNet/CIFAR-10 training runs (a documented substitution;
// see DESIGN.md). Training VGG-16/ResNet-50/MobileNet-V2 on ImageNet is not
// feasible in pure Go within this repository's scope, so the model
// interpolates between the operating points the paper reports (Tables 3, 4,
// 5, 7), preserving exactly the trends that the paper's evaluation relies on:
//
//   - kernel-pattern pruning *improves* accuracy once the pattern set has
//     ~4–8 candidates, with diminishing returns beyond 8;
//   - too few patterns (<4) lose accuracy for lack of flexibility;
//   - connectivity pruning costs accuracy monotonically in its rate, far less
//     than filter/channel (structured) pruning at equal rates;
//   - on CIFAR-10 the joint scheme slightly improves over the baseline.
//
// The real, non-analytical validation of these trends at small scale lives in
// internal/admm's end-to-end tests.
package accuracy

import (
	"fmt"
	"sort"
)

// anchorCurve is a piecewise-linear curve through calibration anchors,
// clamped at both ends.
type anchorCurve map[float64]float64

func (c anchorCurve) at(x float64) float64 {
	keys := make([]float64, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	if x <= keys[0] {
		return c[keys[0]]
	}
	if x >= keys[len(keys)-1] {
		return c[keys[len(keys)-1]]
	}
	for i := 1; i < len(keys); i++ {
		if x <= keys[i] {
			x0, x1 := keys[i-1], keys[i]
			y0, y1 := c[x0], c[x1]
			return y0 + (y1-y0)*(x-x0)/(x1-x0)
		}
	}
	return c[keys[len(keys)-1]]
}

// calib is the per-(network, dataset) calibration record.
type calib struct {
	baseline float64     // dense accuracy (Top-5 for ImageNet, Top-1 for CIFAR)
	patGain  anchorCurve // accuracy delta vs pattern count (pattern-only pruning)
	connPen  anchorCurve // accuracy penalty vs connectivity pruning rate
}

// Calibration anchors. ImageNet points are taken from the paper's Tables 3,
// 5 and 7; CIFAR points from Table 5. Points the paper does not report are
// smooth extensions preserving the stated qualitative behaviour.
var calibs = map[string]calib{
	"VGG/imagenet": {
		baseline: 91.7,
		patGain: anchorCurve{1: -3.0, 2: -1.4, 4: 0.1, 6: 0.4, 8: 0.6,
			12: 0.7, 56: 0.75},
		connPen: anchorCurve{1: 0, 2: 0.25, 3.6: 0.7, 5.3: 1.3, 8: 2.1, 18: 4.6},
	},
	"RNT/imagenet": {
		baseline: 92.7,
		patGain: anchorCurve{1: -2.6, 2: -1.1, 4: 0.0, 6: 0.0, 8: 0.1,
			12: 0.3, 56: 0.35},
		connPen: anchorCurve{1: 0, 2: 0.1, 3.6: 0.3, 5.3: 0.7, 8: 1.4, 18: 3.5},
	},
	"MBNT/imagenet": {
		baseline: 90.3,
		patGain: anchorCurve{1: -4.2, 2: -1.9, 4: 0.0, 6: 0.0, 8: 0.0,
			12: 0.1, 56: 0.1},
		connPen: anchorCurve{1: 0, 2: 0.0, 3.6: 0.0, 5.3: 0.5, 8: 1.6, 18: 4.8},
	},
	"VGG/cifar10": {
		baseline: 93.5,
		patGain: anchorCurve{1: -2.2, 2: -0.8, 4: 0.3, 6: 0.4, 8: 0.5,
			12: 0.55, 56: 0.6},
		connPen: anchorCurve{1: 0, 2: 0.05, 3.6: 0.1, 8: 0.8, 18: 2.4},
	},
	"RNT/cifar10": {
		baseline: 94.6,
		patGain: anchorCurve{1: -1.8, 2: -0.5, 4: 0.7, 6: 0.9, 8: 1.1,
			12: 1.15, 56: 1.2},
		connPen: anchorCurve{1: 0, 2: 0.02, 3.6: 0.1, 8: 0.6, 18: 1.9},
	},
	"MBNT/cifar10": {
		baseline: 94.5,
		patGain: anchorCurve{1: -2.9, 2: -1.1, 4: 0.1, 6: 0.1, 8: 0.2,
			12: 0.2, 56: 0.25},
		connPen: anchorCurve{1: 0, 2: 0.03, 3.6: 0.1, 8: 0.9, 18: 2.7},
	},
	// The SR generator is an image-to-image net; its quality metric is PSNR
	// (dB) rather than classification accuracy. The same anchor-curve shape
	// holds: pattern pruning's regularization slightly helps at moderate set
	// sizes, connectivity pruning degrades reconstruction monotonically.
	"SR/cifar10": {
		baseline: 28.4,
		patGain: anchorCurve{1: -1.1, 2: -0.4, 4: 0.1, 6: 0.15, 8: 0.2,
			12: 0.2, 56: 0.25},
		connPen: anchorCurve{1: 0, 2: 0.1, 3.6: 0.3, 8: 1.2, 18: 3.1},
	},
	"SR/imagenet": {
		baseline: 26.9,
		patGain: anchorCurve{1: -1.3, 2: -0.5, 4: 0.0, 6: 0.1, 8: 0.15,
			12: 0.15, 56: 0.2},
		connPen: anchorCurve{1: 0, 2: 0.15, 3.6: 0.4, 8: 1.5, 18: 3.6},
	},
}

func lookup(short, dataset string) calib {
	c, ok := calibs[short+"/"+dataset]
	if !ok {
		panic(fmt.Sprintf("accuracy: no calibration for %s/%s", short, dataset))
	}
	return c
}

// Baseline returns the dense (unpruned) accuracy: ImageNet Top-5 or CIFAR-10
// Top-1, the metric Table 5 reports.
func Baseline(short, dataset string) float64 {
	return lookup(short, dataset).baseline
}

// PatternOnly returns accuracy under kernel-pattern pruning alone with a
// k-candidate pattern set (Table 3's experiment).
func PatternOnly(short, dataset string, k int) float64 {
	c := lookup(short, dataset)
	return c.baseline + c.patGain.at(float64(k))
}

// Joint returns accuracy under joint kernel-pattern (k candidates) and
// connectivity pruning at connRate (Tables 4, 5, 7).
func Joint(short, dataset string, k int, connRate float64) float64 {
	c := lookup(short, dataset)
	return c.baseline + c.patGain.at(float64(k)) - c.connPen.at(connRate)
}

// Loss returns baseline − joint accuracy; negative values mean improvement,
// matching the sign convention of Table 5's "Accu Loss" column.
func Loss(short, dataset string, k int, connRate float64) float64 {
	return Baseline(short, dataset) - Joint(short, dataset, k, connRate)
}

// Structured returns the accuracy of coarse-grained (filter/channel) pruning
// at the given weight-reduction rate: the paper's ADMM-structured extension
// loses 1.0% Top-5 at 3.8× on VGG-16 (Section 2.4), notably worse than the
// pattern scheme.
func Structured(short, dataset string, rate float64) float64 {
	c := lookup(short, dataset)
	pen := anchorCurve{1: 0, 2: 0.4, 3.8: 1.0, 8: 2.9, 18: 6.5}
	// Scale the penalty by how sensitive this network is relative to VGG.
	rel := c.connPen.at(3.6) / calibs["VGG/imagenet"].connPen.at(3.6)
	if rel == 0 {
		rel = 0.6
	}
	return c.baseline - pen.at(rate)*rel
}

// NonStructured returns the accuracy of ADMM-based non-structured pruning at
// the given rate — the strongest accuracy baseline (ADMM-NN): essentially
// lossless up to high rates on these networks (Table 4 context).
func NonStructured(short, dataset string, rate float64) float64 {
	c := lookup(short, dataset)
	pen := anchorCurve{1: 0, 8: 0.2, 12: 0.5, 18: 1.2, 30: 3.0}
	return c.baseline - pen.at(rate)*0.5
}
