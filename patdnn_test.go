package patdnn

import (
	"strings"
	"testing"

	"patdnn/internal/dataset"
	"patdnn/internal/nn"
)

func TestCompileAndEstimate(t *testing.T) {
	c, err := Compile("VGG", "imagenet", 8, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.EstimateLatencyMs("sd855", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := c.EstimateLatencyMs("sd855", "gpu")
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= gpu {
		t.Fatalf("CPU (%.1f) should be slower than GPU (%.1f)", cpu, gpu)
	}
	tvm, err := c.BaselineLatencyMs("tvm", "sd855", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if tvm <= cpu {
		t.Fatalf("TVM (%.1f) should be slower than PatDNN (%.1f)", tvm, cpu)
	}
	if acc := c.EstimatedAccuracy(); acc < 91 || acc > 92 {
		t.Fatalf("accuracy %.1f out of expected band", acc)
	}
	data, err := c.LRJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"layout": "FKW"`) {
		t.Fatal("LR JSON missing FKW layout")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("AlexNet", "imagenet", 8, 3.6); err == nil {
		t.Fatal("expected unknown-network error")
	}
	c, err := Compile("MBNT", "cifar10", 8, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EstimateLatencyMs("sd999", "cpu"); err == nil {
		t.Fatal("expected unknown-device error")
	}
	if _, err := c.EstimateLatencyMs("sd855", "npu"); err == nil {
		t.Fatal("expected unknown-target error")
	}
	if _, err := c.BaselineLatencyMs("caffe", "sd855", "cpu"); err == nil {
		t.Fatal("expected unknown-framework error")
	}
}

func TestPruneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a CNN")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 200
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 6, 8, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 4, BatchSize: 16, Seed: 1})

	pc := DefaultPruneConfig()
	pc.Iterations, pc.EpochsPerIter, pc.FinetuneEps = 2, 1, 2
	res, err := Prune(net, train, test, pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compression < 2 {
		t.Fatalf("compression %.2f too low", res.Compression)
	}
	if len(res.Layers) == 0 {
		t.Fatal("no pruned layers returned")
	}
	for _, l := range res.Layers {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExperimentsRegistryAndRun(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Fatalf("experiments = %d", len(Experiments()))
	}
	out, err := RunExperiment("table6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "L9") {
		t.Fatalf("table6 output missing L9:\n%s", out)
	}
	if _, err := RunExperiment("figure99"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}
