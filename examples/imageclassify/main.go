// Imageclassify runs the paper's full pipeline end to end with real
// computation at laptop scale: train a CNN on the synthetic image
// classification workload, prune it with ADMM (patterns + connectivity),
// compile the pruned conv layers through FKR/FKW/LRE code generation, and
// execute real inference with the compiled kernels — verifying that the
// compiled sparse network predicts identically to the pruned reference and
// measuring the host-side speedup of the optimization levels.
package main

import (
	"fmt"
	"log"

	"patdnn"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func main() {
	cfg := dataset.DefaultConfig()
	cfg.N = 400
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	fmt.Printf("synthetic dataset: %d train / %d test\n", train.Len(), test.Len())

	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 8, 12, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 6, BatchSize: 16, Seed: 1})
	fmt.Printf("dense accuracy: %.1f%%\n", 100*net.Accuracy(test))

	res, err := patdnn.Prune(net, train, test, patdnn.DefaultPruneConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned accuracy: %.1f%% at %.2fx CONV compression\n",
		100*res.AccuracyAfter, res.Compression)

	// Compile each pruned conv layer and run real inference through the
	// compiled kernels, comparing against the pruned network's predictions.
	pool := runtime.NewPool(4)
	convs := net.ConvLayers()
	plans := make(map[codegen.Level][]*codegen.Plan)
	for _, level := range []codegen.Level{codegen.NoOpt, codegen.Tuned} {
		for _, pc := range res.Layers {
			plan, err := codegen.Compile(pc, level, lr.DefaultTuning())
			if err != nil {
				log.Fatal(err)
			}
			plans[level] = append(plans[level], plan)
		}
	}

	predict := func(level codegen.Level, img *tensor.Tensor) int {
		x := img
		for i, plan := range plans[level] {
			x = pool.RunLayer(plan, x, convs[i].Bias.W.Data)
			tensor.ReLU(x)
			x, _ = tensor.MaxPool2D(x, 2)
		}
		flat := x.Reshape(x.Len())
		var fc *nn.Dense
		for _, l := range net.Layers {
			if d, ok := l.(*nn.Dense); ok {
				fc = d
			}
		}
		return fc.Forward(flat).ArgMax()
	}

	agree, correct := 0, 0
	for i, img := range test.Images {
		p := predict(codegen.Tuned, img)
		if p == net.Predict(img) {
			agree++
		}
		if p == test.Labels[i] {
			correct++
		}
	}
	fmt.Printf("compiled-kernel inference: %.1f%% accuracy, %d/%d predictions match the reference\n",
		100*float64(correct)/float64(test.Len()), agree, test.Len())

	// Host wall-clock comparison of the code-generation levels.
	img := test.Images[0]
	for _, level := range []codegen.Level{codegen.NoOpt, codegen.Tuned} {
		ms := runtime.Measure(50, func() { predict(level, img) })
		fmt.Printf("host inference at %v: %.3f ms/image\n", level, ms)
	}
}
