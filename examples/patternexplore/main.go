// Patternexplore reproduces the pattern-set design study (paper Section 4.1
// and Tables 3/7) at small scale with real training: it extracts the natural
// patterns of a pre-trained CNN, builds Top-k candidate sets, and measures
// how the pattern count affects (a) the weight mass the projection retains,
// (b) accuracy immediately after hard projection, and (c) accuracy after
// fine-tuning — too few patterns lose accuracy for lack of flexibility; 4-8
// suffice.
package main

import (
	"fmt"
	"sort"

	"patdnn/internal/admm"
	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
)

func main() {
	cfg := dataset.DefaultConfig()
	cfg.N = 300
	cfg.Noise = 1.1 // hard enough that pruning damage is visible
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)

	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 6, 8, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 4, BatchSize: 16, Seed: 1})
	dense := net.Accuracy(test)
	fmt.Printf("dense accuracy: %.1f%%\n\n", 100*dense)

	// Natural-pattern histogram over the trained conv weights (Section 4.1:
	// scan all kernels, take the 4 largest-magnitude weights incl. center).
	convs := net.ConvLayers()
	hist := pattern.Histogram(convs[0].Weight.W, convs[1].Weight.W)
	type pc struct {
		p pattern.Pattern
		n int
	}
	var counts []pc
	total := 0
	for p, n := range hist {
		counts = append(counts, pc{p, n})
		total += n
	}
	sort.Slice(counts, func(a, b int) bool {
		if counts[a].n != counts[b].n {
			return counts[a].n > counts[b].n
		}
		return counts[a].p.Mask < counts[b].p.Mask
	})
	fmt.Printf("%d distinct natural patterns across %d kernels; top 8:\n", len(counts), total)
	for i := 0; i < 8 && i < len(counts); i++ {
		fmt.Printf("  %2d. %s  x%d\n", i+1, counts[i].p, counts[i].n)
	}

	// retainedMass: fraction of conv weight L2 mass a Top-k set keeps under
	// best-pattern projection — the distortion side of the pattern-count
	// trade-off.
	retainedMass := func(k int) float64 {
		set := pattern.TopK(hist, k)
		var kept, all float64
		for _, conv := range convs {
			w := conv.Weight.W
			n := w.Len() / 9
			for i := 0; i < n; i++ {
				kernel := w.Data[i*9 : (i+1)*9]
				var norm2 float64
				for _, v := range kernel {
					norm2 += float64(v) * float64(v)
				}
				best := pattern.Best(kernel, set)
				r := best.RetainedNorm(kernel)
				kept += r * r
				all += norm2
			}
		}
		return kept / all
	}

	fmt.Println("\npattern-count sweep (pattern pruning only, short ADMM + fine-tune):")
	fmt.Println("#patterns  weight mass kept  acc after projection  acc after fine-tune")
	for _, k := range []int{1, 2, 4, 6, 8} {
		n := net.Clone()
		acfg := admm.DefaultConfig(pattern.DesignSet(k,
			n.ConvLayers()[0].Weight.W, n.ConvLayers()[1].Weight.W))
		acfg.ConnRate = 0 // pattern pruning only
		acfg.Iterations, acfg.EpochsPerIt, acfg.FinetuneEps = 2, 1, 1
		rep, err := admm.Run(n, train, test, acfg)
		if err != nil {
			fmt.Println("admm failed:", err)
			return
		}
		fmt.Printf("%9d  %15.1f%%  %19.1f%%  %18.1f%%\n", k,
			100*retainedMass(k), 100*rep.AccAfterADMM, 100*rep.AccAfterTune)
	}
	fmt.Println("\npaper trend (Table 3): accuracy recovers (and can improve) once 4-8 patterns are available;")
	fmt.Println("a 1-pattern set forces every kernel into one shape and keeps the least weight mass.")
}
