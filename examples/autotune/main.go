// Autotune demonstrates the parameter auto-tuning stage (paper Section 5.5)
// on VGG-16's L4 layer: the Genetic-Algorithm explorer searches the
// tile/unroll/permutation space against the mobile device cost model, the
// performance estimator is trained on the exploration history, and the best
// configuration is printed as a layerwise-representation tuning block.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/device"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

func main() {
	m := model.VGG16("imagenet")
	l4 := m.ConvLayers()[3]
	fmt.Printf("tuning %s %s (output %dx%d) at 8 patterns + 3.6x connectivity\n",
		l4.Name, l4.FilterShape(), l4.OutH, l4.OutW)
	pc := pruned.Generate(l4, pattern.Canonical(8), 3.6, 1, true)
	d := device.SD855()

	eval := func(t lr.Tuning) float64 {
		plan, err := codegen.Compile(pc, codegen.Tuned, t)
		if err != nil {
			return 1e9
		}
		return d.TimeMs(plan.Stats(), device.CPU, t.Threads, 4)
	}

	start := time.Now()
	best, history, err := tuner.Search(tuner.DefaultSpace(), eval, tuner.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	worst := history[0].CostMs
	for _, r := range history {
		if r.CostMs > worst {
			worst = r.CostMs
		}
	}
	fmt.Printf("explored %d configurations in %v (paper: 3-5 ms for a full DNN)\n",
		len(history), elapsed.Round(time.Millisecond))
	fmt.Printf("config spread: worst %.2f ms, best %.2f ms (%.2fx gap — why tuning matters)\n",
		worst, best.CostMs, worst/best.CostMs)
	fmt.Printf("default config: %.2f ms; tuned: %.2f ms (%.2fx)\n",
		eval(lr.DefaultTuning()), best.CostMs, eval(lr.DefaultTuning())/best.CostMs)

	cfg, merr := json.Marshal(best.Config)
	if merr != nil {
		log.Fatal(merr)
	}
	fmt.Printf("best tuning block: %s\n", cfg)

	// Train the performance estimator on the history and check its
	// usefulness for a quick prediction on a "new platform".
	est := tuner.NewEstimator(10, 1)
	split := len(history) * 4 / 5
	est.Fit(history[:split], 200, 0.01)
	fmt.Printf("estimator MSE on held-out configs: %.4f (mean cost %.2f ms)\n",
		est.MSE(history[split:]), best.CostMs)
	fmt.Printf("estimator predicts %.2f ms for the tuned config (measured %.2f ms)\n",
		est.Predict(best.Config), best.CostMs)
}
