// Quickstart: compile VGG-16 at the paper's operating point (8 patterns,
// 3.6x connectivity pruning) and compare PatDNN's estimated mobile latency
// against TFLite/TVM/MNN on the Snapdragon 855 — the headline result of the
// paper (real-time VGG-16 inference on a phone).
package main

import (
	"fmt"
	"log"

	"patdnn"
)

func main() {
	compiled, err := patdnn.Compile("VGG", "imagenet", 8, 3.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s (%s): estimated Top-5 accuracy %.1f%% (dense baseline 91.7%%)\n\n",
		compiled.Model.Name, compiled.Model.Dataset, compiled.EstimatedAccuracy())

	for _, target := range []string{"cpu", "gpu"} {
		pat, err := compiled.EstimateLatencyMs("sd855", target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Snapdragon 855 %s:\n", target)
		fmt.Printf("  PatDNN  %8.1f ms\n", pat)
		for _, fw := range []string{"mnn", "tvm", "tflite"} {
			ms, err := compiled.BaselineLatencyMs(fw, "sd855", target)
			if err != nil {
				fmt.Printf("  %-7s %8s  (%v)\n", fw, "n/a", err)
				continue
			}
			fmt.Printf("  %-7s %8.1f ms  (PatDNN is %.1fx faster)\n", fw, ms, ms/pat)
		}
		fmt.Println()
	}
	gpu, _ := compiled.EstimateLatencyMs("sd855", "gpu")
	if gpu < 33 {
		fmt.Printf("GPU latency %.1f ms < 33 ms: real-time VGG-16 inference achieved.\n", gpu)
	}
}
