// Package patdnn is the public API of this PatDNN reproduction: an end-to-end
// framework for real-time DNN inference on mobile devices via pattern-based
// weight pruning (kernel patterns + connectivity pruning, trained with an
// extended ADMM framework) and compiler code generation (filter kernel
// reorder, FKW compressed storage, load redundancy elimination, parameter
// auto-tuning), following Niu et al., ASPLOS 2020.
//
// The package exposes the three stages of the paper's pipeline:
//
//	Prune    — run ADMM pattern+connectivity pruning on a real trainable CNN
//	           (the training substrate in internal/nn) and obtain accuracy
//	           plus the pruned layer representations.
//	Compile  — lower a network description (VGG-16, ResNet-50, MobileNet-V2)
//	           through the full compiler: FKR, FKW encoding, LRE, tuning —
//	           and estimate latency on the modeled mobile devices.
//	Engine   — serve inference: compile a model once, cache the plan stack,
//	           and execute concurrent requests as batched layer sweeps over
//	           the worker-pool runtime (the compile-once / execute-many
//	           deployment story of paper Figure 7, as a server). An Engine
//	           can additionally attach a Registry (Engine.WithRegistry): a
//	           disk-backed versioned store of .patdnn artifacts with
//	           hot-reload, weighted canary routing, and a memory-budgeted
//	           LRU over compiled plans — the model-lifecycle layer between
//	           Compile's output on disk and the hot plan cache.
//
// Everything deeper (tensor math, the compiler passes, the device models,
// the serving engine, the benchmark harness) lives under internal/; see
// DESIGN.md for the map.
package patdnn

import (
	"fmt"
	"io"
	"strings"

	"patdnn/internal/accuracy"
	"patdnn/internal/admm"
	"patdnn/internal/baseline"
	"patdnn/internal/bench"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/dataset"
	"patdnn/internal/device"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/registry"
	"patdnn/internal/serve"
)

// PruneConfig configures an ADMM pruning run on the training substrate.
type PruneConfig struct {
	Patterns      int     // pattern-set size (paper default 8)
	ConnRate      float64 // connectivity pruning rate (paper default 3.6; <=1 disables)
	Iterations    int     // ADMM iterations
	EpochsPerIter int
	FinetuneEps   int
	Seed          int64
}

// DefaultPruneConfig returns the paper's operating point scaled to the small
// training substrate.
func DefaultPruneConfig() PruneConfig {
	return PruneConfig{Patterns: 8, ConnRate: 3.6, Iterations: 4,
		EpochsPerIter: 2, FinetuneEps: 3, Seed: 1}
}

// PruneResult reports an ADMM pruning run.
type PruneResult struct {
	AccuracyBefore float64
	AccuracyAfter  float64
	Compression    float64
	Layers         []*pruned.Conv
}

// Prune trains-with-constraints: it applies joint kernel-pattern and
// connectivity pruning to net using the extended ADMM framework, fine-tunes
// the surviving weights, and reports accuracy on test.
func Prune(net *nn.Network, train, test *dataset.Dataset, cfg PruneConfig) (*PruneResult, error) {
	acfg := admm.DefaultConfig(pattern.Canonical(cfg.Patterns))
	acfg.ConnRate = cfg.ConnRate
	if cfg.Iterations > 0 {
		acfg.Iterations = cfg.Iterations
	}
	if cfg.EpochsPerIter > 0 {
		acfg.EpochsPerIt = cfg.EpochsPerIter
	}
	if cfg.FinetuneEps > 0 {
		acfg.FinetuneEps = cfg.FinetuneEps
	}
	acfg.Seed = cfg.Seed
	acfg.SkipFirstConv = true
	rep, err := admm.Run(net, train, test, acfg)
	if err != nil {
		return nil, err
	}
	return &PruneResult{
		AccuracyBefore: rep.AccBefore,
		AccuracyAfter:  rep.AccAfterTune,
		Compression:    rep.CompressionRate,
		Layers:         rep.Pruned,
	}, nil
}

// SavePruned writes a trained-and-pruned network (the output of Prune) as a
// deployable .patdnn compact model: FKW-compressed FP16 weights plus biases
// and the layerwise representation. The file round-trips through
// internal/modelfile and runs with cmd/patdnn-run.
func SavePruned(net *nn.Network, res *PruneResult, w io.Writer) error {
	file := &modelfile.File{LR: &lr.Representation{Model: "custom-cnn", Device: "CPU"}}
	convs := net.ConvLayers()
	if len(convs) < len(res.Layers) {
		return fmt.Errorf("patdnn: network has %d conv layers, result has %d",
			len(convs), len(res.Layers))
	}
	for i, pc := range res.Layers {
		bias := append([]float32(nil), convs[i].Bias.W.Data...)
		file.Layers = append(file.Layers, modelfile.Layer{Conv: pc, Bias: bias})
		file.LR.Layers = append(file.LR.Layers,
			lr.FromPruned(pc, reorder.Build(pc), lr.DefaultTuning()))
	}
	return modelfile.Write(w, file)
}

// Compiled is a pattern-pruned, compiler-optimized model ready for latency
// estimation and inspection.
type Compiled struct {
	Model    *model.Model
	Patterns int
	ConnRate float64
	sparse   *baseline.PatDNNSparse
	lrRep    *lr.Representation
}

// Compile lowers one of the paper's networks ("VGG", "RNT", "MBNT" — or full
// names) on "imagenet" or "cifar10" through the whole PatDNN compiler at the
// given operating point.
func Compile(network, ds string, patterns int, connRate float64) (*Compiled, error) {
	m, err := model.ByName(network, ds)
	if err != nil {
		return nil, err
	}
	sp, err := baseline.CompilePatDNN(m, patterns, connRate, codegen.Tuned, 42)
	if err != nil {
		return nil, err
	}
	rep := &lr.Representation{Model: m.Name, Device: "CPU"}
	set := pattern.Canonical(patterns)
	for i, l := range m.ConvLayers() {
		if l.KH != 3 || l.KW != 3 || l.Kind != model.Conv {
			continue
		}
		c := pruned.Generate(l, set, connRate, int64(300+i), false)
		rep.Layers = append(rep.Layers, lr.FromPruned(c, reorder.Build(c), lr.DefaultTuning()))
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &Compiled{Model: m, Patterns: patterns, ConnRate: connRate,
		sparse: sp, lrRep: rep}, nil
}

// LRJSON renders the model's Layerwise Representation as JSON (Figure 8).
func (c *Compiled) LRJSON() ([]byte, error) { return c.lrRep.Marshal() }

// WriteModel writes the deployable .patdnn compact model of this compiled
// network (every 3×3 conv pruned at the operating point, FKW-compressed FP16
// weights, LR, CRC footer): the artifact cmd/patdnn-run executes and the
// model registry serves. Deterministic per (network, patterns, connRate), so
// distinct operating points yield distinct model versions.
func (c *Compiled) WriteModel(w io.Writer) error {
	return c.WriteModelQuant(w, 0)
}

// WriteModelQuant is WriteModel with quantized weight storage: bits >= 2
// stores every conv's FKW weight stream as symmetric per-filter integer
// levels plus float32 scales (a format-v3 artifact, ~4× smaller at 8 bits);
// bits == 0 writes the FP16 v1 form.
func (c *Compiled) WriteModelQuant(w io.Writer, bits int) error {
	set := pattern.Canonical(c.Patterns)
	file := &modelfile.File{LR: &lr.Representation{Model: c.Model.Name, Device: "CPU"}}
	first := true
	for i, l := range c.Model.ConvLayers() {
		if l.KH != 3 || l.KW != 3 || l.Kind != model.Conv {
			continue
		}
		rate := c.ConnRate
		if first {
			// The paper prunes the first conv more conservatively.
			rate = baseline.FirstLayerConnRate(c.ConnRate)
			first = false
		}
		pc := pruned.Generate(l, set, rate, int64(400+i), true)
		file.Layers = append(file.Layers, modelfile.Layer{Conv: pc})
		file.LR.Layers = append(file.LR.Layers,
			lr.FromPruned(pc, reorder.Build(pc), lr.DefaultTuning()))
	}
	file.QuantBits = bits
	return modelfile.Write(w, file)
}

// WriteModelGraph writes the format-v2 deployable artifact of this compiled
// network: the full topology (layer kinds, shapes, residual shortcut edges)
// plus pattern-pruned 3×3 conv records, connectivity-pruned 1×1 and FC dense
// records, and BatchNorm parameters. Unlike WriteModel's conv-trunk form,
// a graph artifact serves end to end — ResNet-50 and MobileNet-V2 included —
// through the graph executor (BN folded at compile time, residual adds fused
// into conv epilogues). Deterministic per (network, patterns, connRate).
// Networks with operators outside the executable IR (e.g. the 7×7 ImageNet
// ResNet stem) are rejected with a descriptive error.
func (c *Compiled) WriteModelGraph(w io.Writer) error {
	return c.WriteModelGraphQuant(w, 0)
}

// WriteModelGraphQuant is WriteModelGraph with quantized weight storage:
// bits >= 2 stores every pattern conv's FKW weight stream as symmetric
// per-filter integer levels plus float32 scales (a format-v3 artifact, ~4×
// smaller at 8 bits, served quantized — packedq8 — by default); bits == 0
// writes the FP16 v2 form.
func (c *Compiled) WriteModelGraphQuant(w io.Writer, bits int) error {
	params, err := execgraph.Generate(c.Model, c.Patterns, c.ConnRate, 42)
	if err != nil {
		return err
	}
	file := &modelfile.File{
		LR:  &lr.Representation{Model: c.Model.Name, Device: "CPU"},
		Net: c.Model,
	}
	for _, l := range c.Model.Layers {
		switch l.Kind {
		case model.ConvTranspose:
			// Transposed convs ride the 3×3 conv record format (the direct,
			// pre-flip weights; the topology's kind + out_pad distinguish them
			// at load time). Upsample layers are parameter-free and live in the
			// topology alone.
			cp := params.Convs[l.Name]
			file.Layers = append(file.Layers, modelfile.Layer{Conv: cp.Conv, Bias: cp.Bias})
			file.LR.Layers = append(file.LR.Layers,
				lr.FromPruned(cp.Conv, reorder.Build(cp.Conv), lr.DefaultTuning()))
		case model.Conv, model.DWConv:
			if l.KH == 3 {
				cp := params.Convs[l.Name]
				file.Layers = append(file.Layers, modelfile.Layer{Conv: cp.Conv, Bias: cp.Bias})
				if l.Kind == model.Conv {
					file.LR.Layers = append(file.LR.Layers,
						lr.FromPruned(cp.Conv, reorder.Build(cp.Conv), lr.DefaultTuning()))
				}
				continue
			}
			dp := params.Dense[l.Name]
			file.Dense = append(file.Dense, modelfile.DenseLayer{
				Name: l.Name, Kind: modelfile.DenseConv1x1,
				OutC: l.OutC, InC: l.InC, Stride: l.Stride,
				InH: l.InH, InW: l.InW, OutH: l.OutH, OutW: l.OutW,
				Weights: dp.W.Data, Bias: dp.Bias,
			})
		case model.FC:
			dp := params.Dense[l.Name]
			file.Dense = append(file.Dense, modelfile.DenseLayer{
				Name: l.Name, Kind: modelfile.DenseFC,
				OutC: l.OutC, InC: l.InC,
				Weights: dp.W.Data, Bias: dp.Bias,
			})
		case model.BatchNorm:
			bp := params.BNs[l.Name]
			file.BNs = append(file.BNs, modelfile.BNLayer{
				Name: l.Name, Gamma: bp.Gamma, Beta: bp.Beta,
				Mean: bp.Mean, Var: bp.Var, Eps: bp.Eps,
			})
		}
	}
	file.QuantBits = bits
	return modelfile.Write(w, file)
}

// EstimateLatencyMs predicts inference latency on a modeled platform:
// device is "sd855", "sd845" or "kirin980"; target is "cpu" or "gpu".
func (c *Compiled) EstimateLatencyMs(dev, target string) (float64, error) {
	d, err := deviceByName(dev)
	if err != nil {
		return 0, err
	}
	tgt, err := targetByName(target)
	if err != nil {
		return 0, err
	}
	return c.sparse.TimeMs(d, tgt), nil
}

// BaselineLatencyMs predicts the latency of a competitor framework
// ("tflite", "tvm", "mnn", "dense") on the same model/platform.
func (c *Compiled) BaselineLatencyMs(framework, dev, target string) (float64, error) {
	d, err := deviceByName(dev)
	if err != nil {
		return 0, err
	}
	tgt, err := targetByName(target)
	if err != nil {
		return 0, err
	}
	var f baseline.Framework
	switch strings.ToLower(framework) {
	case "tflite":
		f = baseline.TFLite()
	case "tvm":
		f = baseline.TVM()
	case "mnn":
		f = baseline.MNN()
	case "dense":
		f = baseline.PatDNNDense(true)
	default:
		return 0, fmt.Errorf("patdnn: unknown framework %q", framework)
	}
	return f.TimeMs(c.Model, d, tgt)
}

// EstimatedAccuracy returns the calibrated accuracy at this operating point
// (ImageNet Top-5 / CIFAR Top-1; see DESIGN.md on the substitution).
func (c *Compiled) EstimatedAccuracy() float64 {
	return accuracy.Joint(c.Model.Short, c.Model.Dataset, c.Patterns, c.ConnRate)
}

func deviceByName(name string) (device.Device, error) {
	switch strings.ToLower(name) {
	case "sd855", "snapdragon855":
		return device.SD855(), nil
	case "sd845", "snapdragon845":
		return device.SD845(), nil
	case "kirin980":
		return device.Kirin980(), nil
	}
	return device.Device{}, fmt.Errorf("patdnn: unknown device %q (want sd855, sd845, kirin980)", name)
}

func targetByName(name string) (device.Target, error) {
	switch strings.ToLower(name) {
	case "cpu":
		return device.CPU, nil
	case "gpu":
		return device.GPU, nil
	}
	return device.CPU, fmt.Errorf("patdnn: unknown target %q (want cpu or gpu)", name)
}

// Engine is the concurrent inference engine: it compiles each requested
// model exactly once through the full pattern path, caches the compiled plan
// stack plus packed FKW weights, and executes concurrent Infer calls as
// batched layer sweeps over the shared worker pool. Create one with
// NewEngine; cmd/patdnn-serve wraps it in an HTTP server, and examples can
// embed it directly. It is safe for concurrent use.
type Engine = serve.Engine

// EngineConfig configures an Engine; the zero value selects sensible
// defaults (GOMAXPROCS workers, batches of 8 within a 2ms window, the
// paper's 8-pattern / 3.6x operating point). The optimization level defaults
// to EngineLevelAuto: per conv layer, the tuner's estimator chooses between
// the tuned dense-layout kernels and the packed FKW-direct backend (which
// streams the compressed weight arrays with zero per-weight index arithmetic
// and fuses the bias+ReLU epilogue). Set Level to "noopt", "reorder", "lre",
// "tuned", or "packed" to pin one; requests may override it per call, and
// each level is a distinct plan-cache entry.
type EngineConfig = serve.Config

// EngineLevelAuto is the EngineConfig.Level value (and the default) that
// lets the tuner pick the kernel backend per layer.
const EngineLevelAuto = serve.LevelAuto

// InferRequest is one inference call against an Engine.
type InferRequest = serve.Request

// InferResponse reports one completed inference: the output feature map plus
// how the request was served (batch size, queue and run time).
type InferResponse = serve.Response

// EngineStats is a snapshot of an Engine's counters (requests, batches,
// plan-cache hits/misses).
type EngineStats = serve.Stats

// ErrEngineClosed is returned by Engine.Infer after Engine.Close.
var ErrEngineClosed = serve.ErrClosed

// NewEngine creates a concurrent inference engine. Models compile lazily on
// first use (or eagerly via Engine.Preload) and stay cached until
// Engine.Close.
func NewEngine(cfg EngineConfig) *Engine { return serve.New(cfg) }

// Registry is the disk-backed versioned model registry: it watches a models
// directory of `<name>@<version>.patdnn` artifacts (hot-reloading on change
// and quarantining corrupt files), resolves "name@version" specs plus a
// mutable name → version alias, splits bare-name traffic across versions by
// weight (canary rollouts), and bounds resident compiled plans with a
// byte-accounted LRU budget. Attach one to an Engine with
// Engine.WithRegistry; inference requests then address registry models by
// name or name@version. See internal/registry for the full API.
type Registry = registry.Registry

// RegistryConfig configures Engine.WithRegistry: the models directory, the
// memory budget over compiled plan stacks (0 = unlimited), the hot-reload
// polling period, and the deterministic route-picker seed.
type RegistryConfig = registry.Config

// RegistryStats snapshots registry counters (scans, hot reloads, evictions,
// lazy recompiles, resident bytes); also embedded in EngineStats.Registry.
type RegistryStats = registry.Stats

// EngineReadiness is Engine.Readiness's report: per-model compile/load state
// and whether the engine should receive traffic yet (the /readyz contract).
type EngineReadiness = serve.Readiness

// Experiments lists the reproduction experiments (one per paper table and
// figure); each Run() regenerates the artifact.
func Experiments() []bench.Experiment { return bench.All() }

// RunExperiment regenerates one artifact by ID ("table3", "figure13", ...).
func RunExperiment(id string) (string, error) {
	e, ok := bench.ByID(id)
	if !ok {
		return "", fmt.Errorf("patdnn: unknown experiment %q", id)
	}
	return e.Run().Render(), nil
}
